//===- coalescing/WorkGraph.h - Unified coalescing merge engine -*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic view of an interference graph under coalescing merges: classes
/// of merged vertices with class-level adjacency. All coalescing heuristics
/// (aggressive, conservative rules, optimistic de-coalescing, exact
/// searches) operate on one WorkGraph — this is the shared merge engine the
/// Appel–George comparison pays for uniformly.
///
/// Engine features:
///  - Hybrid adjacency. Below a size threshold (dense mode; 4096 vertices
///    cost two megabytes of matrix) class adjacency lives in a row-major
///    BitRows matrix: merges OR the loser's row into the root's and patch
///    the loser's column word-at-a-time, interference tests are O(1) bit
///    probes, and common-neighbor counts are masked popcounts. Sorted
///    neighbor vectors are materialized lazily, only when a caller asks
///    for a class's neighbor list. Above the threshold the sorted rows
///    live in one pooled adjacency arena (support/AdjacencyArena) — the
///    primary representation, updated eagerly on every merge; tests
///    binary-search the smaller row. The cached Briggs/George sweeps keep
///    paying off past the threshold via epoch-stamped scratch bit rows
///    (support/StampedBitRow): one neighbor list is stamped, the other
///    probed, so a safety test is O(deg(u) + deg(v)) with O(1) membership
///    checks and no O(classes) clearing.
///  - Merge undo-log. checkpoint()/rollback() bracket speculative merges so
///    probing strategies (brute-force conservative test, exact branch and
///    bound, optimistic de-coalescing) no longer deep-copy the graph.
///  - Degree cache. enableDegreeCache(k) maintains, through every merge and
///    rollback, the number of significant neighbor classes (degree >= k) of
///    each class, plus dense bit masks of the significant and exactly-k
///    classes. The Briggs and George safety tests read these instead of
///    re-walking and re-probing neighbor sets.
///  - Instrumentation. An optional CoalescingTelemetry sink counts engine
///    events (merges, rollbacks, interference queries, colorability
///    checks); an optional EngineObserver sees the raw event stream and,
///    per committed merge, the set of classes the merge touched (the
///    incremental conservative driver's reactivation source).
///
/// Class representatives follow the historical union-by-rank policy of
/// support/UnionFind (higher rank wins; ties keep the first argument and
/// bump its rank), so partitions — and rep-order-sensitive tie-breaks in
/// drivers — are bit-compatible with the previous implementation.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_WORKGRAPH_H
#define COALESCING_WORKGRAPH_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"
#include "graph/Graph.h"
#include "support/AdjacencyArena.h"
#include "support/BitRows.h"
#include "support/CancelToken.h"
#include "support/StampedBitRow.h"
#include "support/TiledBitRows.h"
#include "support/VertexSpan.h"

#include <algorithm>
#include <vector>

namespace rc {

/// An interference graph whose vertices can be merged (coalesced). Classes
/// are named by a representative original vertex.
class WorkGraph {
public:
  /// Largest vertex count for which the dense class-pair bit rows are
  /// kept. 4096 vertices cost two megabytes of matrix.
  static constexpr unsigned DefaultDenseThreshold = 4096;

  explicit WorkGraph(const Graph &G,
                     unsigned DenseThreshold = DefaultDenseThreshold);

  WorkGraph(const WorkGraph &) = default;
  WorkGraph &operator=(const WorkGraph &) = delete;

  /// Number of original vertices.
  unsigned numOriginalVertices() const { return Original.numVertices(); }

  /// Number of current classes.
  unsigned numClasses() const { return NumClasses; }

  /// True when the dense class-pair bit rows are active.
  bool usesDenseAdjacency() const { return Dense; }

  /// Returns the class representative of original vertex \p V.
  unsigned classOf(unsigned V) const { return Rep[V]; }

  /// Returns true if \p U and \p V have been merged.
  bool sameClass(unsigned U, unsigned V) const { return Rep[U] == Rep[V]; }

  /// Returns true if the classes of \p U and \p V interfere.
  bool interfere(unsigned U, unsigned V) const {
    note(EngineEvent::InterferenceQuery, U, V);
    return classesAdjacent(Rep[U], Rep[V]);
  }

  /// Returns true if classes \p CU and \p CV (representatives) interfere.
  /// Not an event source — drivers and tests may probe freely.
  bool classesAdjacent(unsigned CU, unsigned CV) const {
    if (CU == CV)
      return false;
    if (Dense)
      return ClassEdges.test(CU, CV);
    return ClassArena.rowSize(CU) <= ClassArena.rowSize(CV)
               ? ClassArena.contains(CU, CV)
               : ClassArena.contains(CV, CU);
  }

  /// Number of interfering neighbor classes of the class of \p V
  /// (maintained incrementally in both adjacency modes).
  unsigned degree(unsigned V) const {
    unsigned C = Rep[V];
    return Dense ? Deg[C] : ClassArena.rowSize(C);
  }

  /// The neighbor classes (as representatives, sorted ascending) of the
  /// class of \p V. In dense mode the list is materialized from the
  /// class's bit row on first use after a merge or rollback. The span
  /// stays valid until the next merge, rollback, or (dense mode)
  /// materialization of that same class.
  VertexSpan neighborClasses(unsigned V) const {
    unsigned C = Rep[V];
    return Dense ? VertexSpan(materializedNeighbors(C)) : ClassArena.row(C);
  }

  /// Original vertices in the class of \p V.
  const std::vector<unsigned> &members(unsigned V) const {
    return Members[Rep[V]];
  }

  /// Returns true if \p U and \p V may be merged (distinct, non-interfering
  /// classes).
  bool canMerge(unsigned U, unsigned V) const {
    return !sameClass(U, V) && !classesAdjacent(Rep[U], Rep[V]);
  }

  /// Merges the classes of \p U and \p V. Requires canMerge.
  /// \returns the representative of the merged class.
  unsigned merge(unsigned U, unsigned V);

  // --- Degree cache ------------------------------------------------------

  /// Starts maintaining significance state for \p K: bit masks of the
  /// significant (degree >= \p K) and exactly-K classes in both adjacency
  /// modes, plus, in sparse mode, a per-class count of significant
  /// neighbors. The cache is
  /// updated inside merge() and its undo, so briggsTest/georgeTest read
  /// masked popcounts (or counters) instead of probing neighbor sets. Must not be enabled while
  /// merges that predate the call are still subject to rollback (enable
  /// right after construction, or after the last checkpoint that could
  /// unwind earlier merges has been committed). Re-enabling with a
  /// different K rebuilds the cache.
  void enableDegreeCache(unsigned K);

  /// The K the degree cache maintains; 0 when disabled.
  unsigned degreeCacheK() const { return CacheK; }

  /// Number of significant neighbor classes (degree >= the cache K) of
  /// class \p C (a representative). Requires an enabled cache. Sparse mode
  /// reads the incrementally maintained counter; dense mode computes the
  /// count on demand from the row and the significance mask — merges then
  /// maintain no per-class counters at all.
  unsigned significantNeighbors(unsigned C) const {
    assert(CacheK && "degree cache is not enabled");
    if (!Dense)
      return SigCount[C];
    const uint64_t *R = ClassEdges.row(C);
    unsigned S = 0;
    for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W)
      S += static_cast<unsigned>(std::popcount(R[W] & SigWords[W]));
    return S;
  }

  /// Dense mode with an enabled cache: true iff the Briggs high-degree
  /// count for a merge of \p CU and \p CV stays below \p Limit. The count
  /// is one fused sweep — significant neighbors of the union minus commons
  /// at exactly K, which drop below the bar when the merge takes their
  /// shared neighbor (the exactly-K mask is a subset of the significance
  /// mask, so the subtraction is exact). Adjacent endpoints count
  /// themselves when significant; callers fold the correction into
  /// \p Limit. Aborts as soon as the count reaches \p Limit.
  bool briggsHighDegreeBelow(unsigned CU, unsigned CV,
                             unsigned Limit) const {
    assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
    const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
    unsigned High = 0;
    for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W) {
      uint64_t B = (RU[W] | RV[W]) & SigWords[W] &
                   ~(RU[W] & RV[W] & ExactKWords[W]);
      High += static_cast<unsigned>(std::popcount(B));
      if (High >= Limit)
        return false;
    }
    return true;
  }

  /// Dense mode with an enabled cache: true iff the George test passes for
  /// merging \p CU into \p CV — no significant neighbor of \p CU (other
  /// than \p CV itself) lies outside \p CV's neighborhood. Early-exits on
  /// the first word holding a witness.
  bool georgeWitnessesEmpty(unsigned CU, unsigned CV) const {
    assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
    const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
    for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W) {
      uint64_t B = RU[W] & SigWords[W] & ~RV[W];
      if ((CV >> 6) == W)
        B &= ~(uint64_t(1) << (CV & 63));
      if (B)
        return false;
    }
    return true;
  }

  /// Sparse mode with an enabled cache: true iff the Briggs high-degree
  /// count for a merge of \p CU and \p CV stays below \p Limit. The
  /// endpoints themselves are skipped (walk semantics), so no limit
  /// correction is needed. Aborts as soon as the count reaches \p Limit.
  ///
  /// Dispatches to the tiled popcount sweep when both classes have (or
  /// clear the degree threshold for lazily building) tiled bit rows, and
  /// to the stamped-scratch walk otherwise; the two are decision-identical
  /// (sparse-tiled-parity fuzz property).
  bool briggsHighDegreeBelowSparse(unsigned CU, unsigned CV,
                                   unsigned Limit) const {
    assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
    if (tileRowReady(CU) && tileRowReady(CV))
      return briggsHighDegreeBelowSparseTiled(CU, CV, Limit);
    return briggsHighDegreeBelowSparseWalk(CU, CV, Limit);
  }

  /// Sparse mode with an enabled cache: true iff the George test passes
  /// for merging \p CU into \p CV — no significant neighbor of \p CU
  /// (other than \p CV itself) lies outside \p CV's neighborhood. Same
  /// tiled-vs-walk dispatch as briggsHighDegreeBelowSparse.
  bool georgeWitnessesEmptySparse(unsigned CU, unsigned CV) const {
    assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
    if (tileRowReady(CU) && tileRowReady(CV))
      return georgeWitnessesEmptySparseTiled(CU, CV);
    return georgeWitnessesEmptySparseWalk(CU, CV);
  }

  /// The reference sorted-row scan behind briggsHighDegreeBelowSparse: one
  /// scratch row is stamped with each endpoint's neighbors, so
  /// common-neighbor checks are O(1) probes instead of binary searches;
  /// significance and exactly-K come from the threshold masks the degree
  /// cache maintains in both modes. Public so the parity fuzz property can
  /// pit it against the tiled sweep directly.
  bool briggsHighDegreeBelowSparseWalk(unsigned CU, unsigned CV,
                                       unsigned Limit) const;

  /// The reference scan behind georgeWitnessesEmptySparse: stamps \p CV's
  /// row once, then probes it per significant neighbor of \p CU.
  bool georgeWitnessesEmptySparseWalk(unsigned CU, unsigned CV) const;

  /// Sparse cached mode: appends the Briggs blockers for a merge of \p CU
  /// and \p CV — the neighbor classes still significant after the merge —
  /// in the legacy walk order (\p CU's row first, then \p CV's exclusive
  /// neighbors). One merge-walk over the two sorted rows with bit-mask
  /// significance probes; replaces the uncached walk's binary search per
  /// neighbor when the watch set of a rejected affinity is collected.
  void appendBriggsHighDegreeSparse(unsigned CU, unsigned CV,
                                    std::vector<unsigned> &Out) const;

  /// Sparse cached mode: appends every George witness for merging \p CU
  /// into \p CV — significant neighbors of \p CU outside \p CV's
  /// neighborhood — in \p CU's row order.
  void appendGeorgeWitnessesSparse(unsigned CU, unsigned CV,
                                   std::vector<unsigned> &Out) const;

  /// Tiled Briggs sweep (both classes' tile rows must be built, see
  /// tileRowReady): a merge-walk over the two sorted tile lists computing
  /// the same fused word formula as the dense briggsHighDegreeBelow —
  /// significant union minus commons at exactly K — with the endpoint bits
  /// masked out to match the walk's skip-endpoints semantics.
  bool briggsHighDegreeBelowSparseTiled(unsigned CU, unsigned CV,
                                        unsigned Limit) const;

  /// Tiled George sweep over \p CU's tiles against \p CV's (both built):
  /// a word of `sig(CU-row) & ~CV-row` outside the CV bit is a witness.
  bool georgeWitnessesEmptySparseTiled(unsigned CU, unsigned CV) const;

  /// Sparse cached mode: returns true once class \p C has a tiled bit row,
  /// lazily materializing it from the class's CSR row when the row is both
  /// big (degree >= TileMinDegree) and tile-dense: degree must be at least
  /// TileMinDensity bits per 512-bit tile spanned by the sorted row
  /// ((back >> 9) - (front >> 9) + 1, an O(1) lower bound on bits per
  /// distinct tile). Scattered rows — about one neighbor per tile — stay
  /// on the walk, where probing degree entries beats popcounting 8 words
  /// for every nearly-empty tile; concentrated rows flip that economics by
  /// an order of magnitude. Once built, a row is maintained through every
  /// merge/undo, so build timing never changes decisions.
  bool tileRowReady(unsigned C) const {
    if (Tiles.built(C))
      return true;
    VertexSpan Row = ClassArena.row(C);
    if (TileMinDegree) {
      if (Row.size() < TileMinDegree)
        return false;
      unsigned SpanTiles = (Row.back() >> TiledBitRows::TileShift) -
                           (Row.front() >> TiledBitRows::TileShift) + 1;
      if (Row.size() < size_t(TileMinDensity) * SpanTiles)
        return false;
    }
    Tiles.buildRow(C, Row);
    return true;
  }

  /// Sets the class degree at or above which sparse cached tests consider
  /// tiling a class (default DefaultTileMinDegree). Low-degree classes
  /// stay on the stamped-scratch walk, which is cheaper than materializing
  /// tiles for a handful of neighbors. 0 tiles everything unconditionally
  /// (bypassing the density gate too — the parity fuzz hook), ~0u disables
  /// tiling; decisions are identical at any setting. Takes effect on
  /// future lazy builds — call before the tests run.
  void setTileMinDegree(unsigned MinDegree) { TileMinDegree = MinDegree; }

  /// Dense mode with an enabled cache: appends to \p Out the classes the
  /// Briggs test counts as high-degree for a merge of \p CU and \p CV —
  /// neighbors of either class whose merge-corrected degree is >= K
  /// (commons at exactly K drop below the bar; the endpoints themselves
  /// are never listed). One masked word sweep.
  void appendBriggsHighDegree(unsigned CU, unsigned CV,
                              std::vector<unsigned> &Out) const;

  /// Dense mode with an enabled cache: appends to \p Out the George test's
  /// witnesses against merging \p CU into \p CV — significant neighbors of
  /// \p CU that are not adjacent to \p CV (excluding \p CV itself). One
  /// masked word sweep.
  void appendGeorgeWitnesses(unsigned CU, unsigned CV,
                             std::vector<unsigned> &Out) const;

  /// Dense mode: number of 64-bit words in a class bitmask row (for
  /// callers holding watch sets as masks).
  unsigned maskWords() const {
    assert(Dense && "bitmask rows exist only in dense mode");
    return ClassEdges.wordsPerRow();
  }

  /// Mask forms of the two watch-set sweeps above: OR the same class sets
  /// into \p Out (maskWords() words) without materializing class ids —
  /// O(words) stores instead of one push per blocker. Unlike the append
  /// forms, the endpoint bits are not masked out; callers watch the
  /// endpoints anyway.
  void briggsWatchWords(unsigned CU, unsigned CV, uint64_t *Out) const;
  void georgeWatchWords(unsigned CU, unsigned CV, uint64_t *Out) const;

  // --- Speculation -------------------------------------------------------

  /// A position in the merge undo-log.
  using Checkpoint = size_t;

  /// Marks the current state. While at least one checkpoint is active,
  /// merges are recorded in the undo-log (and the loser's storage is
  /// retained for restoration instead of being released).
  Checkpoint checkpoint();

  /// Undoes all merges since the most recent checkpoint and deactivates it.
  void rollback();

  /// Undoes all merges back to \p C. Checkpoints taken after \p C are
  /// deactivated; the checkpoint that produced \p C stays active, so the
  /// caller can keep merging and roll back to it again.
  void rollbackTo(Checkpoint C);

  /// Deactivates the most recent checkpoint, keeping all merges. When no
  /// checkpoint remains active the undo-log is discarded.
  void commit();

  // --- Extraction --------------------------------------------------------

  /// Extracts the current partition as a CoalescingSolution (dense class
  /// ids in order of first appearance by vertex id).
  CoalescingSolution solution() const;

  /// Materializes the current quotient graph. Class c of the quotient is
  /// the class with dense id c in solution().
  Graph quotientGraph() const;

  /// Returns true if the current quotient graph is greedy-k-colorable,
  /// computed in-engine (k-core elimination over the class adjacency)
  /// without materializing the quotient. Equivalent to
  /// isGreedyKColorable(quotientGraph(), K) — greedy elimination is
  /// order-independent. When \p StuckReps is non-null it receives the
  /// representatives of the classes left stuck (the unique maximal k-core;
  /// empty on success), sorted ascending.
  bool quotientGreedyKColorable(unsigned K,
                                std::vector<unsigned> *StuckReps =
                                    nullptr) const;

  // --- Cancellation ------------------------------------------------------

  /// Attaches (or detaches, with null) a cooperative cancellation token.
  /// The engine polls it at its natural work boundaries — every merge(),
  /// checkpoint() and quotientGreedyKColorable() — so drivers only need to
  /// read cancelRequested() at their loop heads. The engine itself never
  /// aborts: merges and rollbacks always complete, keeping the graph
  /// consistent; stopping is the driver's job.
  void setCancelToken(const CancelToken *C) { Cancel = C; }

  /// True once the attached token has expired. One relaxed atomic load
  /// (plus a null test); safe in hot loops.
  bool cancelRequested() const { return Cancel && Cancel->expired(); }

  // --- Instrumentation ---------------------------------------------------

  /// Attaches (or detaches, with null) a telemetry counter sink.
  void attachTelemetry(CoalescingTelemetry *T) { Telemetry = T; }

  /// Attaches (or detaches, with null) a raw event observer.
  void setObserver(EngineObserver *O) { Observer = O; }

  /// Routes one event to the attached telemetry/observer. Drivers use this
  /// to report decisions (test outcomes, de-coalesces) through the engine's
  /// sinks.
  void note(EngineEvent E, unsigned U = ~0u, unsigned V = ~0u) const {
    if (Telemetry)
      Telemetry->count(E);
    if (Observer)
      Observer->onEvent(E, U, V);
  }

private:
  /// Everything needed to undo one merge. The loser's adjacency and member
  /// storage are moved here, so rollback restores them without rebuilding.
  struct MergeRecord {
    unsigned Root = 0;
    unsigned Loser = 0;
    /// Members[Root].size() before the splice.
    unsigned RootMembersBefore = 0;
    /// True when the merge bumped Rank[Root] (equal-rank tie).
    bool RankBumped = false;
    std::vector<unsigned> LoserAdj;
    std::vector<unsigned> LoserMembers;
    /// Loser neighbors that were not already Root neighbors (sorted).
    std::vector<unsigned> NewRootNeighbors;
  };

  void undoMerge(MergeRecord &Rec);

  /// Class degree through the mode-appropriate representation.
  unsigned classDegree(unsigned C) const {
    return Dense ? Deg[C] : ClassArena.rowSize(C);
  }

  /// Dense mode: rebuilds ClassAdj[C] from the class's bit row unless it
  /// is already current for this adjacency epoch.
  const std::vector<unsigned> &materializedNeighbors(unsigned C) const;

  /// Updates (or, with \p Undo, exactly reverses) the degree cache for one
  /// merge of \p Loser into \p Root. \p LoserAdj and \p NewNeighbors are
  /// the loser's pre-merge neighbors and the subset of them not previously
  /// adjacent to Root; \p Commons is their difference (the classes whose
  /// degree the merge dropped). Must run while the class adjacency reflects
  /// the POST-merge state: after the structural updates in merge(), before
  /// them in undoMerge(). Every counter delta depends only on class
  /// degrees, never on other counters, so the undo direction is the exact
  /// negation of the merge direction.
  void updateDegreeCache(unsigned Root, unsigned Loser,
                         const std::vector<unsigned> &LoserAdj,
                         const std::vector<unsigned> &NewNeighbors,
                         const std::vector<unsigned> &Commons, bool Undo);

  /// Sets the dense significant/exactly-K mask bits of class \p C for
  /// degree \p Deg.
  void setDegreeBits(unsigned C, unsigned Deg) {
    uint64_t Bit = uint64_t(1) << (C & 63);
    if (Deg >= CacheK)
      SigWords[C >> 6] |= Bit;
    else
      SigWords[C >> 6] &= ~Bit;
    if (Deg == CacheK)
      ExactKWords[C >> 6] |= Bit;
    else
      ExactKWords[C >> 6] &= ~Bit;
  }

  const Graph &Original;
  bool Dense;
  /// Dense mode only: interference bits between class representatives,
  /// row-major so neighborhoods intersect word-at-a-time. Unlike the class
  /// adjacency vectors, rows are kept exact — a merge clears the loser's
  /// bits and rollback re-sets them — so masked popcounts never see dead
  /// classes.
  BitRows ClassEdges;
  /// Sparse mode only: the primary class adjacency — pooled sorted rows
  /// keyed by representative, updated eagerly on every merge and undo.
  AdjacencyArena ClassArena;
  /// Per original vertex: its class representative (eagerly maintained).
  std::vector<unsigned> Rep;
  /// Union-by-rank state per representative (see file comment).
  std::vector<unsigned> Rank;
  /// Dense mode only: lazily materialized sorted neighbor vectors cached
  /// from the bit rows, valid while AdjStamp is set.
  mutable std::vector<std::vector<unsigned>> ClassAdj;
  /// Dense mode: per-representative class degree. Dead classes freeze at
  /// their pre-merge degree, which is exactly what rollback restores.
  std::vector<unsigned> Deg;
  /// Dense mode: AdjStamp[C] != 0 iff ClassAdj[C] currently matches row C.
  /// Merge and rollback clear the stamps of exactly the classes whose rows
  /// they touch (the two endpoints and the loser's neighborhood), so the
  /// cache stays warm elsewhere — brute-force probes re-materialize only
  /// O(deg) lists instead of the whole quotient.
  mutable std::vector<uint8_t> AdjStamp;
  /// Keyed by representative.
  std::vector<std::vector<unsigned>> Members;
  unsigned NumClasses = 0;

  /// Degree cache (enableDegreeCache). CacheK == 0 means disabled.
  /// SigCount[C] (sparse mode only) counts neighbor classes of live class
  /// C with degree >= CacheK; entries of dead classes freeze at their
  /// pre-merge value, which is exactly what rollback restores.
  /// SigWords/ExactKWords (both modes) are one bit per class: degree
  /// >= CacheK resp. == CacheK, with dead classes cleared. Dense mode
  /// sweeps them word-parallel against the bit rows; sparse mode probes
  /// them per neighbor in the stamped-scratch tests.
  unsigned CacheK = 0;
  std::vector<unsigned> SigCount;
  std::vector<uint64_t> SigWords;
  std::vector<uint64_t> ExactKWords;
  /// Sparse cached tests: reusable scratch bit rows (O(1) clear via epoch
  /// stamps). Mutable — the tests are logically const.
  mutable StampedBitRow ScratchA;
  mutable StampedBitRow ScratchB;
  /// appendBriggsHighDegreeSparse: holds \p CV's exclusive blockers during
  /// the merge-walk so they can follow \p CU's in legacy walk order
  /// without a per-call allocation.
  mutable std::vector<unsigned> ScratchList;
  /// Sparse cached tests: per-class tiled bit rows (512-bit tiles keyed by
  /// tile index in a pooled arena beside the CSR rows), built lazily for
  /// big tile-dense classes (see tileRowReady) and then maintained through
  /// every merge and undo exactly like the CSR rows — a built row always
  /// equals its CSR row, dead losers freeze for LIFO rollback. Mutable for
  /// the lazy build inside logically-const tests.
  mutable TiledBitRows Tiles;
  /// See setTileRowReady/setTileMinDegree. The density floor of 8 bits per
  /// spanned tile is where popcounting a tile's 8 words breaks even with
  /// probing its bits one walk entry at a time.
  static constexpr unsigned DefaultTileMinDegree = 64;
  static constexpr unsigned TileMinDensity = 8;
  unsigned TileMinDegree = DefaultTileMinDegree;

  std::vector<MergeRecord> UndoLog;
  /// Active checkpoints (positions into UndoLog, non-decreasing).
  std::vector<size_t> Marks;

  CoalescingTelemetry *Telemetry = nullptr;
  EngineObserver *Observer = nullptr;
  const CancelToken *Cancel = nullptr;
};

} // namespace rc

#endif // COALESCING_WORKGRAPH_H
