//===- coalescing/WorkGraph.h - Unified coalescing merge engine -*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic view of an interference graph under coalescing merges: classes
/// of merged vertices with class-level adjacency. All coalescing heuristics
/// (aggressive, conservative rules, optimistic de-coalescing, exact
/// searches) operate on one WorkGraph — this is the shared merge engine the
/// Appel–George comparison pays for uniformly.
///
/// Engine features:
///  - Hybrid adjacency. Class adjacency is kept as sorted vectors of class
///    representatives; below a size threshold a triangular BitMatrix over
///    class pairs additionally provides O(1) interference tests (dense
///    mode). Above the threshold, tests binary-search the smaller list.
///  - Merge undo-log. checkpoint()/rollback() bracket speculative merges so
///    probing strategies (brute-force conservative test, exact branch and
///    bound, optimistic de-coalescing) no longer deep-copy the graph.
///  - Instrumentation. An optional CoalescingTelemetry sink counts engine
///    events (merges, rollbacks, interference queries, colorability
///    checks); an optional EngineObserver sees the raw event stream.
///
/// Class representatives follow the historical union-by-rank policy of
/// support/UnionFind (higher rank wins; ties keep the first argument and
/// bump its rank), so partitions — and rep-order-sensitive tie-breaks in
/// drivers — are bit-compatible with the previous implementation.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_WORKGRAPH_H
#define COALESCING_WORKGRAPH_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"
#include "graph/Graph.h"
#include "support/BitMatrix.h"
#include "support/CancelToken.h"

#include <algorithm>
#include <vector>

namespace rc {

/// An interference graph whose vertices can be merged (coalesced). Classes
/// are named by a representative original vertex.
class WorkGraph {
public:
  /// Largest vertex count for which the dense class-pair bit matrix is
  /// kept. 4096 vertices cost one megabyte of matrix.
  static constexpr unsigned DefaultDenseThreshold = 4096;

  explicit WorkGraph(const Graph &G,
                     unsigned DenseThreshold = DefaultDenseThreshold);

  WorkGraph(const WorkGraph &) = default;
  WorkGraph &operator=(const WorkGraph &) = delete;

  /// Number of original vertices.
  unsigned numOriginalVertices() const { return Original.numVertices(); }

  /// Number of current classes.
  unsigned numClasses() const { return NumClasses; }

  /// True when the dense class-pair bit matrix is active.
  bool usesDenseAdjacency() const { return Dense; }

  /// Returns the class representative of original vertex \p V.
  unsigned classOf(unsigned V) const { return Rep[V]; }

  /// Returns true if \p U and \p V have been merged.
  bool sameClass(unsigned U, unsigned V) const { return Rep[U] == Rep[V]; }

  /// Returns true if the classes of \p U and \p V interfere.
  bool interfere(unsigned U, unsigned V) const {
    note(EngineEvent::InterferenceQuery, U, V);
    return classesAdjacent(Rep[U], Rep[V]);
  }

  /// Returns true if classes \p CU and \p CV (representatives) interfere.
  /// Not an event source — drivers and tests may probe freely.
  bool classesAdjacent(unsigned CU, unsigned CV) const {
    if (CU == CV)
      return false;
    if (Dense)
      return ClassEdges.test(CU, CV);
    const std::vector<unsigned> &A =
        ClassAdj[CU].size() <= ClassAdj[CV].size() ? ClassAdj[CU]
                                                   : ClassAdj[CV];
    unsigned Other = &A == &ClassAdj[CU] ? CV : CU;
    return std::binary_search(A.begin(), A.end(), Other);
  }

  /// Number of interfering neighbor classes of the class of \p V (cached:
  /// the size of the maintained class adjacency).
  unsigned degree(unsigned V) const {
    return static_cast<unsigned>(ClassAdj[Rep[V]].size());
  }

  /// The neighbor classes (as representatives, sorted ascending) of the
  /// class of \p V.
  const std::vector<unsigned> &neighborClasses(unsigned V) const {
    return ClassAdj[Rep[V]];
  }

  /// Original vertices in the class of \p V.
  const std::vector<unsigned> &members(unsigned V) const {
    return Members[Rep[V]];
  }

  /// Returns true if \p U and \p V may be merged (distinct, non-interfering
  /// classes).
  bool canMerge(unsigned U, unsigned V) const {
    return !sameClass(U, V) && !classesAdjacent(Rep[U], Rep[V]);
  }

  /// Merges the classes of \p U and \p V. Requires canMerge.
  /// \returns the representative of the merged class.
  unsigned merge(unsigned U, unsigned V);

  // --- Speculation -------------------------------------------------------

  /// A position in the merge undo-log.
  using Checkpoint = size_t;

  /// Marks the current state. While at least one checkpoint is active,
  /// merges are recorded in the undo-log (and the loser's storage is
  /// retained for restoration instead of being released).
  Checkpoint checkpoint();

  /// Undoes all merges since the most recent checkpoint and deactivates it.
  void rollback();

  /// Undoes all merges back to \p C. Checkpoints taken after \p C are
  /// deactivated; the checkpoint that produced \p C stays active, so the
  /// caller can keep merging and roll back to it again.
  void rollbackTo(Checkpoint C);

  /// Deactivates the most recent checkpoint, keeping all merges. When no
  /// checkpoint remains active the undo-log is discarded.
  void commit();

  // --- Extraction --------------------------------------------------------

  /// Extracts the current partition as a CoalescingSolution (dense class
  /// ids in order of first appearance by vertex id).
  CoalescingSolution solution() const;

  /// Materializes the current quotient graph. Class c of the quotient is
  /// the class with dense id c in solution().
  Graph quotientGraph() const;

  /// Returns true if the current quotient graph is greedy-k-colorable,
  /// computed in-engine (k-core elimination over the class adjacency)
  /// without materializing the quotient. Equivalent to
  /// isGreedyKColorable(quotientGraph(), K) — greedy elimination is
  /// order-independent. When \p StuckReps is non-null it receives the
  /// representatives of the classes left stuck (the unique maximal k-core;
  /// empty on success), sorted ascending.
  bool quotientGreedyKColorable(unsigned K,
                                std::vector<unsigned> *StuckReps =
                                    nullptr) const;

  // --- Cancellation ------------------------------------------------------

  /// Attaches (or detaches, with null) a cooperative cancellation token.
  /// The engine polls it at its natural work boundaries — every merge(),
  /// checkpoint() and quotientGreedyKColorable() — so drivers only need to
  /// read cancelRequested() at their loop heads. The engine itself never
  /// aborts: merges and rollbacks always complete, keeping the graph
  /// consistent; stopping is the driver's job.
  void setCancelToken(const CancelToken *C) { Cancel = C; }

  /// True once the attached token has expired. One relaxed atomic load
  /// (plus a null test); safe in hot loops.
  bool cancelRequested() const { return Cancel && Cancel->expired(); }

  // --- Instrumentation ---------------------------------------------------

  /// Attaches (or detaches, with null) a telemetry counter sink.
  void attachTelemetry(CoalescingTelemetry *T) { Telemetry = T; }

  /// Attaches (or detaches, with null) a raw event observer.
  void setObserver(EngineObserver *O) { Observer = O; }

  /// Routes one event to the attached telemetry/observer. Drivers use this
  /// to report decisions (test outcomes, de-coalesces) through the engine's
  /// sinks.
  void note(EngineEvent E, unsigned U = ~0u, unsigned V = ~0u) const {
    if (Telemetry)
      Telemetry->count(E);
    if (Observer)
      Observer->onEvent(E, U, V);
  }

private:
  /// Everything needed to undo one merge. The loser's adjacency and member
  /// storage are moved here, so rollback restores them without rebuilding.
  struct MergeRecord {
    unsigned Root = 0;
    unsigned Loser = 0;
    /// Members[Root].size() before the splice.
    unsigned RootMembersBefore = 0;
    /// True when the merge bumped Rank[Root] (equal-rank tie).
    bool RankBumped = false;
    std::vector<unsigned> LoserAdj;
    std::vector<unsigned> LoserMembers;
    /// Loser neighbors that were not already Root neighbors (sorted).
    std::vector<unsigned> NewRootNeighbors;
  };

  void undoMerge(MergeRecord &Rec);

  const Graph &Original;
  bool Dense;
  /// Dense mode only: interference bits between class representatives.
  /// Bits of dead (merged-away) representatives go stale and are never
  /// queried; rollback revives them unchanged.
  BitMatrix ClassEdges;
  /// Per original vertex: its class representative (eagerly maintained).
  std::vector<unsigned> Rep;
  /// Union-by-rank state per representative (see file comment).
  std::vector<unsigned> Rank;
  /// Keyed by representative; sorted vectors of representatives.
  std::vector<std::vector<unsigned>> ClassAdj;
  /// Keyed by representative.
  std::vector<std::vector<unsigned>> Members;
  unsigned NumClasses = 0;

  std::vector<MergeRecord> UndoLog;
  /// Active checkpoints (positions into UndoLog, non-decreasing).
  std::vector<size_t> Marks;

  CoalescingTelemetry *Telemetry = nullptr;
  EngineObserver *Observer = nullptr;
  const CancelToken *Cancel = nullptr;
};

} // namespace rc

#endif // COALESCING_WORKGRAPH_H
