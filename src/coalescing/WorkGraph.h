//===- coalescing/WorkGraph.h - Mergeable interference graph ----*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic view of an interference graph under coalescing merges: classes
/// of merged vertices with class-level adjacency. All coalescing heuristics
/// (conservative rules, optimistic de-coalescing) operate on a WorkGraph.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_WORKGRAPH_H
#define COALESCING_WORKGRAPH_H

#include "coalescing/Problem.h"
#include "graph/Graph.h"
#include "support/UnionFind.h"

#include <unordered_set>
#include <vector>

namespace rc {

/// An interference graph whose vertices can be merged (coalesced). Classes
/// are named by their union-find representative.
class WorkGraph {
public:
  explicit WorkGraph(const Graph &G);

  /// Number of original vertices.
  unsigned numOriginalVertices() const { return Original.numVertices(); }

  /// Number of current classes.
  unsigned numClasses() const { return UF.numClasses(); }

  /// Returns the class representative of original vertex \p V.
  unsigned classOf(unsigned V) const { return UF.find(V); }

  /// Returns true if \p U and \p V have been merged.
  bool sameClass(unsigned U, unsigned V) const {
    return UF.connected(U, V);
  }

  /// Returns true if the classes of \p U and \p V interfere.
  bool interfere(unsigned U, unsigned V) const;

  /// Number of interfering neighbor classes of the class of \p V.
  unsigned degree(unsigned V) const {
    return static_cast<unsigned>(Adj[classOf(V)].size());
  }

  /// The neighbor classes (as representatives) of the class of \p V.
  const std::unordered_set<unsigned> &neighborClasses(unsigned V) const {
    return Adj[classOf(V)];
  }

  /// Original vertices in the class of \p V.
  const std::vector<unsigned> &members(unsigned V) const {
    return Members[classOf(V)];
  }

  /// Returns true if \p U and \p V may be merged (distinct, non-interfering
  /// classes).
  bool canMerge(unsigned U, unsigned V) const {
    return !sameClass(U, V) && !interfere(U, V);
  }

  /// Merges the classes of \p U and \p V. Requires canMerge.
  /// \returns the representative of the merged class.
  unsigned merge(unsigned U, unsigned V);

  /// Extracts the current partition as a CoalescingSolution.
  CoalescingSolution solution() const;

  /// Materializes the current quotient graph. Class c of the quotient is the
  /// class with dense id c in solution().
  Graph quotientGraph() const;

private:
  const Graph &Original;
  UnionFind UF;
  /// Keyed by class representative; entries are class representatives.
  std::vector<std::unordered_set<unsigned>> Adj;
  /// Keyed by class representative.
  std::vector<std::vector<unsigned>> Members;
};

} // namespace rc

#endif // COALESCING_WORKGRAPH_H
