//===- coalescing/BiasedColoring.cpp - Biased select ----------------------===//

#include "coalescing/BiasedColoring.h"

#include "graph/GreedyColorability.h"

#include <algorithm>

using namespace rc;

BiasedColoringResult rc::biasedColoring(const CoalescingProblem &P) {
  EliminationResult E = greedyEliminate(P.G, P.K);
  assert(E.Success && "biased coloring requires a greedy-k-colorable graph");

  // Affinity adjacency with weights, for the bias.
  std::vector<std::vector<std::pair<unsigned, double>>> AffinityAdj(
      P.G.numVertices());
  for (const Affinity &A : P.Affinities) {
    AffinityAdj[A.U].emplace_back(A.V, A.Weight);
    AffinityAdj[A.V].emplace_back(A.U, A.Weight);
  }

  BiasedColoringResult Result;
  Result.Colors.assign(P.G.numVertices(), -1);
  std::vector<double> Preference(P.K);
  for (auto It = E.Order.rbegin(); It != E.Order.rend(); ++It) {
    unsigned V = *It;
    std::vector<bool> Used(P.K, false);
    for (unsigned W : P.G.neighbors(V))
      if (Result.Colors[W] >= 0)
        Used[static_cast<unsigned>(Result.Colors[W])] = true;

    std::fill(Preference.begin(), Preference.end(), 0.0);
    for (const auto &[W, Weight] : AffinityAdj[V])
      if (Result.Colors[W] >= 0)
        Preference[static_cast<unsigned>(Result.Colors[W])] += Weight;

    int Best = -1;
    double BestScore = -1;
    for (unsigned Color = 0; Color < P.K; ++Color) {
      if (Used[Color])
        continue;
      if (Best < 0 || Preference[Color] > BestScore) {
        Best = static_cast<int>(Color);
        BestScore = Preference[Color];
      }
    }
    assert(Best >= 0 && "elimination order guarantees a free color");
    Result.Colors[V] = Best;
  }
  assert(isValidColoring(P.G, Result.Colors, static_cast<int>(P.K)) &&
         "biased coloring is invalid");

  // Color classes as a coalescing: compress the used colors to dense ids.
  std::vector<int> Dense(P.K, -1);
  unsigned Next = 0;
  Result.Solution.ClassIds.resize(P.G.numVertices());
  for (unsigned V = 0; V < P.G.numVertices(); ++V) {
    int C = Result.Colors[V];
    if (Dense[static_cast<unsigned>(C)] < 0)
      Dense[static_cast<unsigned>(C)] = static_cast<int>(Next++);
    Result.Solution.ClassIds[V] =
        static_cast<unsigned>(Dense[static_cast<unsigned>(C)]);
  }
  Result.Solution.NumClasses = Next;
  Result.Stats = evaluateSolution(P, Result.Solution);
  return Result;
}
