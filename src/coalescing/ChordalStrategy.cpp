//===- coalescing/ChordalStrategy.cpp - Theorem 5 as a coalescer ----------===//

#include "coalescing/ChordalStrategy.h"

#include "coalescing/ChordalIncremental.h"
#include "graph/Chordal.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <numeric>

using namespace rc;

ChordalStrategyResult rc::chordalCoalesce(const CoalescingProblem &P,
                                          CoalescingTelemetry *Telemetry) {
  auto Count = [Telemetry](EngineEvent E) {
    if (Telemetry)
      Telemetry->count(E);
  };
  assert(isChordal(P.G) && "chordal strategy requires a chordal graph");
  assert(P.K >= chordalCliqueNumber(P.G) &&
         "chordal strategy requires k >= omega");

  unsigned N = P.G.numVertices();
  UnionFind Classes(N);

  // Current quotient graph; CurrentId maps class representative to a vertex
  // of Current. Rebuilt after each accepted merge.
  Graph Current = P.G;
  std::vector<unsigned> DenseIds(N);
  std::iota(DenseIds.begin(), DenseIds.end(), 0u);

  auto rebuild = [&]() {
    DenseIds = Classes.denseClassIds();
    Current = P.G.quotient(DenseIds, Classes.numClasses());
    assert(isChordal(Current) &&
           "chain merge broke chordality, contradicting Theorem 5");
  };

  std::vector<unsigned> Order(P.Affinities.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

  ChordalStrategyResult Result;
  for (unsigned Idx : Order) {
    const Affinity &A = P.Affinities[Idx];
    unsigned X = DenseIds[A.U], Y = DenseIds[A.V];
    if (X == Y)
      continue; // Already coalesced (directly or by a chain).
    Count(EngineEvent::MergeAttempted);
    if (Current.hasEdge(X, Y)) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    ChordalIncrementalResult Decision =
        chordalIncrementalCoalescing(Current, X, Y, P.K);
    if (!Decision.Feasible) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    // Merge the whole chain (it includes X and Y). The chain vertices are
    // current-graph classes; map them back through representatives.
    assert(Decision.MergedChain.size() >= 2 && "chain must contain x and y");
    Result.ChainMerges +=
        static_cast<unsigned>(Decision.MergedChain.size()) - 2;
    // Find one original vertex per chain class and union them all.
    std::vector<unsigned> Reps;
    for (unsigned Vertex = 0; Vertex < N; ++Vertex)
      if (std::find(Decision.MergedChain.begin(),
                    Decision.MergedChain.end(),
                    DenseIds[Vertex]) != Decision.MergedChain.end())
        Reps.push_back(Vertex);
    for (size_t I = 1; I < Reps.size(); ++I) {
      Classes.merge(Reps[0], Reps[I]);
      Count(EngineEvent::MergeCommitted);
    }
    rebuild();
  }

  Result.Solution.ClassIds = Classes.denseClassIds();
  Result.Solution.NumClasses = Classes.numClasses();
  Result.Stats = evaluateSolution(P, Result.Solution);
  assert(isValidCoalescing(P.G, Result.Solution) &&
         "chordal strategy produced an invalid coalescing");
  return Result;
}
