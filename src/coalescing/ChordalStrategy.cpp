//===- coalescing/ChordalStrategy.cpp - Theorem 5 as a coalescer ----------===//

#include "coalescing/ChordalStrategy.h"

#include "coalescing/ChordalIncremental.h"
#include "graph/Chordal.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <numeric>

using namespace rc;

ChordalStrategyResult rc::chordalCoalesce(const CoalescingProblem &P,
                                          CoalescingTelemetry *Telemetry) {
  auto Count = [Telemetry](EngineEvent E) {
    if (Telemetry)
      Telemetry->count(E);
  };
  assert(isChordal(P.G) && "chordal strategy requires a chordal graph");
  assert(P.K >= chordalCliqueNumber(P.G) &&
         "chordal strategy requires k >= omega");

  unsigned N = P.G.numVertices();
  UnionFind Classes(N);

  // Current quotient graph; CurrentId maps class representative to a vertex
  // of Current. Rebuilt after each accepted merge.
  Graph Current = P.G;
  std::vector<unsigned> DenseIds(N);
  std::iota(DenseIds.begin(), DenseIds.end(), 0u);

  // Applies the merges of \p Merged (already unioned into \p Tentative)
  // when the resulting quotient stays chordal — guaranteed for gap-free
  // chains (asserted), checked for chains that threaded a slack slot.
  // Returns false (and leaves the state untouched) when the merge would
  // break the chordality every later exact decision depends on.
  auto tryCommit = [&](UnionFind &&Tentative, bool GapFree) {
    std::vector<unsigned> Dense = Tentative.denseClassIds();
    Graph Quotient = P.G.quotient(Dense, Tentative.numClasses());
    bool Chordal = isChordal(Quotient);
    assert((Chordal || !GapFree) &&
           "gap-free chain merge broke chordality, contradicting Theorem 5");
    (void)GapFree;
    if (!Chordal)
      return false;
    Classes = std::move(Tentative);
    DenseIds = std::move(Dense);
    Current = std::move(Quotient);
    return true;
  };

  std::vector<unsigned> Order(P.Affinities.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

  ChordalStrategyResult Result;
  for (unsigned Idx : Order) {
    const Affinity &A = P.Affinities[Idx];
    unsigned X = DenseIds[A.U], Y = DenseIds[A.V];
    if (X == Y)
      continue; // Already coalesced (directly or by a chain).
    Count(EngineEvent::MergeAttempted);
    if (Current.hasEdge(X, Y)) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    ChordalIncrementalResult Decision =
        chordalIncrementalCoalescing(Current, X, Y, P.K);
    if (!Decision.Feasible) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    // Merge the whole chain (it includes X and Y). The chain vertices are
    // current-graph classes; map them back through representatives.
    assert(Decision.MergedChain.size() >= 2 && "chain must contain x and y");
    // Find one original vertex per chain class and union them all into a
    // tentative partition.
    std::vector<unsigned> Reps;
    for (unsigned Vertex = 0; Vertex < N; ++Vertex)
      if (std::find(Decision.MergedChain.begin(),
                    Decision.MergedChain.end(),
                    DenseIds[Vertex]) != Decision.MergedChain.end())
        Reps.push_back(Vertex);
    UnionFind Tentative = Classes;
    for (size_t I = 1; I < Reps.size(); ++I)
      Tentative.merge(Reps[0], Reps[I]);
    if (!tryCommit(std::move(Tentative), Decision.GapFree)) {
      // The chain threads through free color slots and merging its real
      // vertices would break chordality, which every later exact decision
      // depends on. Leave the affinity uncoalesced instead.
      ++Result.DeferredGapped;
      continue;
    }
    Result.ChainMerges +=
        static_cast<unsigned>(Decision.MergedChain.size()) - 2;
    for (size_t I = 1; I < Reps.size(); ++I)
      Count(EngineEvent::MergeCommitted);
  }

  Result.Solution.ClassIds = Classes.denseClassIds();
  Result.Solution.NumClasses = Classes.numClasses();
  Result.Stats = evaluateSolution(P, Result.Solution);
  assert(isValidCoalescing(P.G, Result.Solution) &&
         "chordal strategy produced an invalid coalescing");
  return Result;
}
