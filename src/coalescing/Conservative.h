//===- coalescing/Conservative.h - Conservative coalescing ------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative coalescing (Section 4 of the paper): remove as many moves as
/// possible while keeping the interference graph k-colorable. NP-complete
/// even for k = 3 and a greedy-2-colorable input graph (Theorem 3). In
/// practice heuristics coalesce one affinity at a time with a local safety
/// test; this module implements the paper's three tests:
///
///  - Briggs: the merged node has fewer than k neighbors of degree >= k.
///  - George: every neighbor of u of degree >= k is a neighbor of v.
///  - Brute force: merge, then check greedy-k-colorability in linear time
///    (the "simply use brute force" test suggested in Section 4).
///
/// Each test preserves greedy-k-colorability, so running the driver on a
/// greedy-k-colorable graph keeps it greedy-k-colorable (asserted).
///
/// The driver is incremental: it enables the engine's degree cache (so the
/// tests read cached significant-neighbor counts and masked popcounts
/// instead of walking neighbor sets) and parks rejected affinities on the
/// classes that caused the rejection, re-testing one only after a merge
/// touches a watched class. conservativeCoalesceLegacy keeps the original
/// fixpoint re-scan as the differential-testing reference; both produce
/// identical solutions.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_CONSERVATIVE_H
#define COALESCING_CONSERVATIVE_H

#include "coalescing/Problem.h"
#include "coalescing/WorkGraph.h"

#include <cstdint>

namespace rc {

/// Which incremental safety test the conservative driver uses.
enum class ConservativeRule {
  Briggs,
  George,
  /// Briggs or George (either passing suffices), as advocated by the paper
  /// for the spilling-free setting.
  BriggsOrGeorge,
  /// Merge on a scratch copy and re-check greedy-k-colorability.
  BruteForce,
};

/// Returns true if merging the classes of \p U and \p V passes Briggs' test
/// on \p WG with \p K registers: the merged class has < k neighbor classes
/// of degree >= k (common neighbors counted once, with degree reduced by
/// the merge). When \p WG has its degree cache enabled for this \p K the
/// count comes from cached counters plus masked popcounts; otherwise the
/// neighbor sets are walked. On failure, appends to \p Blockers (when
/// non-null) the classes counted as high-degree — the watch set whose
/// degree must drop before the test can change its mind.
bool briggsTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                std::vector<unsigned> *Blockers = nullptr);

/// Returns true if merging passes George's test: every neighbor class of
/// \p U with degree >= k is also a neighbor of \p V. Asymmetric. Uses the
/// degree cache like briggsTest. On failure, appends to \p Blockers (when
/// non-null) the witnesses: significant neighbors of \p U's class not
/// adjacent to \p V's.
bool georgeTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                std::vector<unsigned> *Blockers = nullptr);

/// Returns true if the quotient graph remains greedy-k-colorable after
/// merging the classes of \p U and \p V (linear-time full check). The merge
/// is probed under a checkpoint and rolled back, so \p WG is unchanged on
/// return (but must be mutable). \p StuckReps, when non-null, receives
/// (replacing its contents) the representatives of the classes of the
/// speculative state's stuck k-core — empty on success; all of them remain
/// valid representatives after the rollback.
bool bruteForceTest(WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                    std::vector<unsigned> *StuckReps = nullptr);

/// Result of a conservative coalescing run.
struct ConservativeResult {
  CoalescingSolution Solution;
  CoalescingStats Stats;
  /// Affinities whose safety test failed (they stay uncoalesced).
  unsigned TestRejections = 0;
  /// Affinities rejected because their classes interfere.
  unsigned InterferenceRejections = 0;
  /// True when the run stopped on an expired CancelToken. The solution is
  /// the valid partial coalescing reached so far (conservative merges
  /// preserve greedy-k-colorability at every prefix).
  bool TimedOut = false;
};

/// Conservative coalescing driver: processes affinities in decreasing
/// weight order, merging when the classes do not interfere and \p Rule
/// deems the merge safe. A merge can enable previously rejected affinities;
/// instead of re-scanning the whole list to a fixed point, rejected
/// affinities park on the classes that caused the rejection and are
/// re-tested only once a merge dirties a watched class. Produces the same
/// solution as conservativeCoalesceLegacy. When \p Telemetry is non-null
/// the engine's event counters accumulate into it. When \p Cancel is
/// non-null the driver stops at the first affinity boundary after the token
/// expires, returning the partial result with TimedOut set; the rejection
/// counters always describe exactly the affinities tested and still
/// rejected in the returned (possibly partial) solution.
ConservativeResult conservativeCoalesce(const CoalescingProblem &P,
                                        ConservativeRule Rule,
                                        CoalescingTelemetry *Telemetry =
                                            nullptr,
                                        const CancelToken *Cancel = nullptr);

/// The original fixpoint driver: re-scans every pending affinity each pass
/// until a pass makes no progress. Kept as the reference implementation for
/// differential testing (the conservative-worklist-parity fuzz property and
/// the golden suite diff it against conservativeCoalesce); quadratic in
/// passes x affinities, so not for production use.
ConservativeResult
conservativeCoalesceLegacy(const CoalescingProblem &P, ConservativeRule Rule,
                           CoalescingTelemetry *Telemetry = nullptr,
                           const CancelToken *Cancel = nullptr);

/// Exact conservative coalescing for tiny instances: maximizes coalesced
/// weight over all partitions induced by affinity subsets, subject to the
/// coalesced graph being k-colorable (or greedy-k-colorable when
/// \p RequireGreedy). Exponential in the number of affinities.
struct ExactConservativeResult {
  CoalescingSolution Solution;
  CoalescingStats Stats;
  bool Optimal = false;
  uint64_t NodesExplored = 0;
  /// True when the search was abandoned on an expired CancelToken; the
  /// solution is the best feasible one found so far (Optimal stays false).
  bool TimedOut = false;
};
ExactConservativeResult
conservativeCoalesceExact(const CoalescingProblem &P, bool RequireGreedy,
                          uint64_t NodeLimit = UINT64_MAX,
                          const CancelToken *Cancel = nullptr);

} // namespace rc

#endif // COALESCING_CONSERVATIVE_H
