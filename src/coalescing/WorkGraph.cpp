//===- coalescing/WorkGraph.cpp - Unified coalescing merge engine ---------===//

#include "coalescing/WorkGraph.h"

#include <bit>

using namespace rc;

/// Appends the set bit positions of \p Row (over \p Words words) to \p Out,
/// ascending.
static void appendBits(const uint64_t *Row, unsigned Words,
                       std::vector<unsigned> &Out) {
  for (unsigned W = 0; W < Words; ++W)
    for (uint64_t B = Row[W]; B; B &= B - 1)
      Out.push_back(W * 64 + static_cast<unsigned>(std::countr_zero(B)));
}

WorkGraph::WorkGraph(const Graph &G, unsigned DenseThreshold)
    : Original(G), Dense(G.numVertices() <= DenseThreshold),
      Rep(G.numVertices()), Rank(G.numVertices(), 0),
      Members(G.numVertices()), NumClasses(G.numVertices()) {
  unsigned N = G.numVertices();
  if (Dense) {
    ClassEdges.reset(N);
    Deg.assign(N, 0);
    AdjStamp.assign(N, 0);
    ClassAdj.resize(N);
  } else {
    ClassArena.reset(N);
    ClassArena.reserveEntries(2 * static_cast<size_t>(G.numEdges()));
  }
  std::vector<unsigned> Sorted;
  for (unsigned V = 0; V < N; ++V) {
    Rep[V] = V;
    Members[V] = {V};
    if (Dense) {
      // The bit rows are the primary adjacency; sorted vectors are
      // materialized on demand (see materializedNeighbors). Each row is
      // filled from its own full neighbor list — symmetry comes from the
      // input graph, with no scattered column writes.
      Deg[V] = static_cast<unsigned>(G.neighbors(V).size());
      uint64_t *R = ClassEdges.row(V);
      for (unsigned W : G.neighbors(V))
        R[W >> 6] |= uint64_t(1) << (W & 63);
    } else {
      // The arena rows are sorted; a dense-mode Graph hands out neighbors
      // in insertion order, so sort through a reused scratch buffer.
      VertexSpan Nbrs = G.neighbors(V);
      Sorted.assign(Nbrs.begin(), Nbrs.end());
      std::sort(Sorted.begin(), Sorted.end());
      ClassArena.assignRow(V, Sorted);
    }
  }
}

const std::vector<unsigned> &
WorkGraph::materializedNeighbors(unsigned C) const {
  assert(Dense && "sparse mode maintains neighbor vectors eagerly");
  if (!AdjStamp[C]) {
    std::vector<unsigned> &A = ClassAdj[C];
    A.clear();
    A.reserve(Deg[C]);
    appendBits(ClassEdges.row(C), ClassEdges.wordsPerRow(), A);
    AdjStamp[C] = 1;
  }
  return ClassAdj[C];
}

void WorkGraph::enableDegreeCache(unsigned K) {
  assert(K > 0 && "degree cache needs a positive k");
  CacheK = K;
  unsigned N = numOriginalVertices();
  if (Dense) {
    // The masks are the whole cache: the tests sweep them word-at-a-time,
    // and significantNeighbors() popcounts on demand, so there are no
    // per-class counters to maintain through merges.
    SigWords.assign(ClassEdges.wordsPerRow(), 0);
    ExactKWords.assign(ClassEdges.wordsPerRow(), 0);
    for (unsigned V = 0; V < N; ++V)
      if (Rep[V] == V)
        setDegreeBits(V, classDegree(V));
    return;
  }
  // Sparse mode keeps the same threshold masks (probed per neighbor by
  // the stamped-scratch tests) plus the per-class significant-neighbor
  // counters the O(1) free-pass shortcuts read.
  SigCount.assign(N, 0);
  SigWords.assign((static_cast<size_t>(N) + 63) / 64, 0);
  ExactKWords.assign((static_cast<size_t>(N) + 63) / 64, 0);
  ScratchA.resize(N);
  ScratchB.resize(N);
  // Tiled rows build lazily per class (see tileRowReady); merges maintain
  // whichever rows exist from here on.
  Tiles.reset(N);
  for (unsigned V = 0; V < N; ++V) {
    if (Rep[V] != V)
      continue;
    setDegreeBits(V, classDegree(V));
    if (classDegree(V) < K)
      continue;
    for (unsigned X : ClassArena.row(V))
      ++SigCount[X];
  }
}

bool WorkGraph::briggsHighDegreeBelowSparseWalk(unsigned CU, unsigned CV,
                                                unsigned Limit) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  auto SigBit = [this](unsigned C) {
    return (SigWords[C >> 6] >> (C & 63)) & 1;
  };
  auto ExactKBit = [this](unsigned C) {
    return (ExactKWords[C >> 6] >> (C & 63)) & 1;
  };
  // One merge-walk over the two sorted rows: commons fall out of the
  // comparison, so nothing is stamped up front and a failing test stops
  // mid-row having paid only for the entries it saw.
  VertexSpan RU = ClassArena.row(CU), RV = ClassArena.row(CV);
  const unsigned *PU = RU.begin(), *EU = RU.end();
  const unsigned *PV = RV.begin(), *EV = RV.end();
  unsigned High = 0;
  while (PU != EU || PV != EV) {
    unsigned NU = PU != EU ? *PU : ~0u;
    unsigned NV = PV != EV ? *PV : ~0u;
    if (NU < NV) {
      if (NU != CV && SigBit(NU) && ++High >= Limit)
        return false;
      ++PU;
    } else if (NV < NU) {
      if (NV != CU && SigBit(NV) && ++High >= Limit)
        return false;
      ++PV;
    } else {
      // A common neighbor loses one degree in the merge: it stays high
      // only above K, i.e. significant but not exactly K. (Commons are
      // never the endpoints — no row contains its own class.)
      if (SigBit(NU) && !ExactKBit(NU) && ++High >= Limit)
        return false;
      ++PU;
      ++PV;
    }
  }
  return true;
}

void WorkGraph::appendBriggsHighDegreeSparse(unsigned CU, unsigned CV,
                                             std::vector<unsigned> &Out) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  auto SigBit = [this](unsigned C) {
    return (SigWords[C >> 6] >> (C & 63)) & 1;
  };
  auto ExactKBit = [this](unsigned C) {
    return (ExactKWords[C >> 6] >> (C & 63)) & 1;
  };
  // Same merge-walk as briggsHighDegreeBelowSparseWalk, collecting instead
  // of counting. CV's exclusive blockers detour through ScratchList so the
  // emitted order matches the legacy two-loop walk exactly.
  ScratchList.clear();
  VertexSpan RU = ClassArena.row(CU), RV = ClassArena.row(CV);
  const unsigned *PU = RU.begin(), *EU = RU.end();
  const unsigned *PV = RV.begin(), *EV = RV.end();
  while (PU != EU || PV != EV) {
    unsigned NU = PU != EU ? *PU : ~0u;
    unsigned NV = PV != EV ? *PV : ~0u;
    if (NU < NV) {
      if (NU != CV && SigBit(NU))
        Out.push_back(NU);
      ++PU;
    } else if (NV < NU) {
      if (NV != CU && SigBit(NV))
        ScratchList.push_back(NV);
      ++PV;
    } else {
      if (SigBit(NU) && !ExactKBit(NU))
        Out.push_back(NU);
      ++PU;
      ++PV;
    }
  }
  Out.insert(Out.end(), ScratchList.begin(), ScratchList.end());
}

void WorkGraph::appendGeorgeWitnessesSparse(unsigned CU, unsigned CV,
                                            std::vector<unsigned> &Out) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  VertexSpan RV = ClassArena.row(CV);
  const unsigned *PV = RV.begin(), *EV = RV.end();
  for (unsigned N : ClassArena.row(CU)) {
    if (N == CV || !((SigWords[N >> 6] >> (N & 63)) & 1))
      continue;
    while (PV != EV && *PV < N)
      ++PV;
    if (PV == EV || *PV != N)
      Out.push_back(N);
  }
}

bool WorkGraph::georgeWitnessesEmptySparseWalk(unsigned CU,
                                               unsigned CV) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  // Both rows are sorted, so CV-membership of CU's significant neighbors
  // is a resumable forward probe — no stamping, and a witness exits
  // having touched only the prefix before it.
  VertexSpan RV = ClassArena.row(CV);
  const unsigned *PV = RV.begin(), *EV = RV.end();
  for (unsigned N : ClassArena.row(CU)) {
    if (N == CV || !((SigWords[N >> 6] >> (N & 63)) & 1))
      continue;
    while (PV != EV && *PV < N)
      ++PV;
    if (PV == EV || *PV != N)
      return false;
  }
  return true;
}

bool WorkGraph::briggsHighDegreeBelowSparseTiled(unsigned CU, unsigned CV,
                                                 unsigned Limit) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  assert(Tiles.built(CU) && Tiles.built(CV) && "tile rows not built");
  constexpr unsigned WPT = TiledBitRows::WordsPerTile;
  const uint32_t *IU = Tiles.tileIndices(CU), *IV = Tiles.tileIndices(CV);
  const uint64_t *WU = Tiles.tileWords(CU), *WV = Tiles.tileWords(CV);
  const unsigned NU = Tiles.tileCount(CU), NV = Tiles.tileCount(CV);
  // Endpoint bits are masked out of the sweep — the walk skips the
  // endpoints, so unlike the dense form no limit correction exists.
  const size_t CUWord = CU >> 6, CVWord = CV >> 6;
  const uint64_t CUBit = uint64_t(1) << (CU & 63);
  const uint64_t CVBit = uint64_t(1) << (CV & 63);
  unsigned High = 0;
  unsigned I = 0, J = 0;
  while (I < NU || J < NV) {
    uint32_t TI = I < NU ? IU[I] : ~uint32_t(0);
    uint32_t TJ = J < NV ? IV[J] : ~uint32_t(0);
    uint32_t T = TI < TJ ? TI : TJ;
    const uint64_t *AU = TI == T ? WU + size_t(I) * WPT : nullptr;
    const uint64_t *AV = TJ == T ? WV + size_t(J) * WPT : nullptr;
    for (unsigned W = 0; W < WPT; ++W) {
      uint64_t RU = AU ? AU[W] : 0, RV = AV ? AV[W] : 0;
      uint64_t Union = RU | RV;
      if (!Union)
        continue;
      // A nonzero tile word holds a class id < numOriginalVertices(), so
      // the global word index is always inside the threshold masks.
      size_t GW = size_t(T) * WPT + W;
      uint64_t B = Union & SigWords[GW] & ~(RU & RV & ExactKWords[GW]);
      if (GW == CUWord)
        B &= ~CUBit;
      if (GW == CVWord)
        B &= ~CVBit;
      High += static_cast<unsigned>(std::popcount(B));
      if (High >= Limit)
        return false;
    }
    I += TI == T;
    J += TJ == T;
  }
  return true;
}

bool WorkGraph::georgeWitnessesEmptySparseTiled(unsigned CU,
                                                unsigned CV) const {
  assert(!Dense && CacheK && "needs sparse adjacency and an enabled cache");
  assert(Tiles.built(CU) && Tiles.built(CV) && "tile rows not built");
  constexpr unsigned WPT = TiledBitRows::WordsPerTile;
  const uint32_t *IU = Tiles.tileIndices(CU), *IV = Tiles.tileIndices(CV);
  const uint64_t *WU = Tiles.tileWords(CU), *WV = Tiles.tileWords(CV);
  const unsigned NU = Tiles.tileCount(CU), NV = Tiles.tileCount(CV);
  const size_t CVWord = CV >> 6;
  const uint64_t CVBit = uint64_t(1) << (CV & 63);
  // Only CU's tiles can hold witnesses; merge-walk CV's list alongside.
  unsigned J = 0;
  for (unsigned I = 0; I < NU; ++I) {
    uint32_t T = IU[I];
    while (J < NV && IV[J] < T)
      ++J;
    const uint64_t *AU = WU + size_t(I) * WPT;
    const uint64_t *AV = J < NV && IV[J] == T ? WV + size_t(J) * WPT : nullptr;
    for (unsigned W = 0; W < WPT; ++W) {
      uint64_t RU = AU[W];
      if (!RU)
        continue;
      size_t GW = size_t(T) * WPT + W;
      uint64_t B = RU & SigWords[GW] & ~(AV ? AV[W] : 0);
      if (GW == CVWord)
        B &= ~CVBit;
      if (B)
        return false;
    }
  }
  return true;
}

void WorkGraph::appendBriggsHighDegree(unsigned CU, unsigned CV,
                                       std::vector<unsigned> &Out) const {
  assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
  const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
  for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W) {
    // Significant neighbors of the union, minus commons at exactly K
    // (corrected below the bar by the merge).
    uint64_t B = (RU[W] | RV[W]) & SigWords[W] & ~(RU[W] & RV[W] &
                                                   ExactKWords[W]);
    if ((CU >> 6) == W)
      B &= ~(uint64_t(1) << (CU & 63));
    if ((CV >> 6) == W)
      B &= ~(uint64_t(1) << (CV & 63));
    for (; B; B &= B - 1)
      Out.push_back(W * 64 + static_cast<unsigned>(std::countr_zero(B)));
  }
}

void WorkGraph::appendGeorgeWitnesses(unsigned CU, unsigned CV,
                                      std::vector<unsigned> &Out) const {
  assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
  const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
  for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W) {
    uint64_t B = RU[W] & SigWords[W] & ~RV[W];
    if ((CV >> 6) == W)
      B &= ~(uint64_t(1) << (CV & 63));
    for (; B; B &= B - 1)
      Out.push_back(W * 64 + static_cast<unsigned>(std::countr_zero(B)));
  }
}

void WorkGraph::briggsWatchWords(unsigned CU, unsigned CV,
                                 uint64_t *Out) const {
  assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
  const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
  for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W)
    Out[W] |= (RU[W] | RV[W]) & SigWords[W] &
              ~(RU[W] & RV[W] & ExactKWords[W]);
}

void WorkGraph::georgeWatchWords(unsigned CU, unsigned CV,
                                 uint64_t *Out) const {
  assert(Dense && CacheK && "needs dense adjacency and an enabled cache");
  const uint64_t *RU = ClassEdges.row(CU), *RV = ClassEdges.row(CV);
  for (unsigned W = 0; W < ClassEdges.wordsPerRow(); ++W)
    Out[W] |= RU[W] & SigWords[W] & ~RV[W];
}

void WorkGraph::updateDegreeCache(unsigned Root, unsigned Loser,
                                  const std::vector<unsigned> &LoserAdj,
                                  const std::vector<unsigned> &NewNeighbors,
                                  const std::vector<unsigned> &Commons,
                                  bool Undo) {
  const unsigned K = CacheK;
  const unsigned LoserDeg = static_cast<unsigned>(LoserAdj.size());
  const unsigned RootDegNew = classDegree(Root);
  const unsigned RootDegOld =
      RootDegNew - static_cast<unsigned>(NewNeighbors.size());

  if (Dense) {
    // Dense mode keeps no per-class counters — only the threshold masks.
    // A one-step degree change flips a class's bits only when it straddles
    // the significance or exactly-K thresholds.
    for (unsigned X : Commons) {
      unsigned NewDeg = classDegree(X);
      if (NewDeg == K - 1 || NewDeg == K)
        setDegreeBits(X, Undo ? NewDeg + 1 : NewDeg);
    }
    setDegreeBits(Root, Undo ? RootDegOld : RootDegNew);
    // Degree 0 on merge clears both of the dead loser's mask bits (K > 0).
    setDegreeBits(Loser, Undo ? LoserDeg : 0);
    return;
  }

  // Merge-direction delta; the undo direction negates every step. Unsigned
  // counter arithmetic is modular, so intermediate wraps cancel exactly.
  const unsigned D = Undo ? ~0u : 1u;

  // The loser leaves every neighborhood it occupied.
  if (LoserDeg >= K)
    for (unsigned X : LoserAdj)
      SigCount[X] -= D;

  // The root's contribution to its neighbors: if the merge pushed it over
  // the significance threshold, all merged neighbors gain it; if it was
  // already significant, only the newly adjacent ones do.
  if (RootDegNew >= K) {
    if (RootDegOld < K) {
      for (unsigned X : ClassArena.row(Root))
        SigCount[X] += D;
    } else {
      for (unsigned X : NewNeighbors)
        SigCount[X] += D;
    }
  }

  // The root gains the significant among its new neighbors (their degrees
  // are unchanged by the merge: they swapped Loser for Root).
  for (unsigned X : NewNeighbors)
    if (classDegree(X) >= K)
      SigCount[Root] += D;

  // Common neighbors lost one degree. A common that was exactly at K
  // flipped to insignificant for its whole (post-merge) neighborhood.
  for (unsigned X : Commons) {
    if (classDegree(X) == K - 1)
      for (unsigned Y : ClassArena.row(X))
        SigCount[Y] -= D;
  }

  // SigCount[Loser] is deliberately left at its pre-merge value: the class
  // is dead, and exact LIFO rollback makes the frozen value correct again
  // the moment the class revives.

  // Sparse mode maintains the same threshold masks as dense mode (the
  // stamped-scratch sweeps probe them per neighbor). Bit updates depend
  // only on class degrees, so the undo direction restores them exactly.
  for (unsigned X : Commons) {
    unsigned NewDeg = classDegree(X);
    if (NewDeg == K - 1 || NewDeg == K)
      setDegreeBits(X, Undo ? NewDeg + 1 : NewDeg);
  }
  setDegreeBits(Root, Undo ? RootDegOld : RootDegNew);
  // Degree 0 on merge clears both of the dead loser's mask bits (K > 0).
  setDegreeBits(Loser, Undo ? LoserDeg : 0);
}

unsigned WorkGraph::merge(unsigned U, unsigned V) {
  assert(canMerge(U, V) && "merging interfering or identical classes");
  if (Cancel)
    Cancel->poll();
  unsigned CU = Rep[U], CV = Rep[V];
  // Union by rank, replicating support/UnionFind::merge(CU, CV): the higher
  // rank wins; on a tie the first argument wins and its rank is bumped.
  unsigned Root = Rank[CU] >= Rank[CV] ? CU : CV;
  unsigned Loser = Root == CU ? CV : CU;
  bool RankBumped = Rank[Root] == Rank[Loser];
  if (RankBumped)
    ++Rank[Root];

  std::vector<unsigned> LoserAdjList;
  std::vector<unsigned> NewNeighbors;
  std::vector<unsigned> Commons;
  bool NeedCommons = CacheK || Observer;

  if (Dense) {
    // Word-parallel merge over the bit rows: split the loser's row into
    // new neighbors and commons, OR it into the root's row, then patch the
    // loser's column out of the matrix. No per-neighbor vector surgery.
    const unsigned Words = ClassEdges.wordsPerRow();
    uint64_t *RR = ClassEdges.row(Root);
    const uint64_t *RL = ClassEdges.row(Loser);
    // Take over the loser's materialization buffer for the walk. If it is
    // still valid — rollback restores it, so speculative merge/rollback
    // cycles over the same classes stay on this path — the list is already
    // built and the walk skips per-bit extraction entirely; either way the
    // cycle runs allocation-free, which is what the exact searches hammer.
    const bool LoserValid = AdjStamp[Loser] != 0;
    LoserAdjList = std::move(ClassAdj[Loser]);
    NewNeighbors.reserve(Deg[Loser]);
    if (NeedCommons)
      Commons.reserve(Deg[Loser]);
    if (LoserValid) {
      assert(LoserAdjList.size() == Deg[Loser] && "stale materialization");
      for (unsigned X : LoserAdjList) {
        if (!((RR[X >> 6] >> (X & 63)) & 1))
          NewNeighbors.push_back(X);
        else if (NeedCommons)
          Commons.push_back(X);
        else
          --Deg[X]; // Common neighbor; nobody needs the list itself.
      }
      for (unsigned W = 0; W < Words; ++W)
        RR[W] |= RL[W];
    } else {
      LoserAdjList.clear();
      LoserAdjList.reserve(Deg[Loser]);
      for (unsigned W = 0; W < Words; ++W) {
        uint64_t L = RL[W];
        if (!L)
          continue;
        unsigned Base = W * 64;
        for (uint64_t B = L; B; B &= B - 1) {
          unsigned X = Base + static_cast<unsigned>(std::countr_zero(B));
          LoserAdjList.push_back(X);
          if (!((RR[W] >> (X & 63)) & 1))
            NewNeighbors.push_back(X);
          else if (NeedCommons)
            Commons.push_back(X);
          else
            --Deg[X]; // Common neighbor; nobody needs the list itself.
        }
        RR[W] |= L;
      }
    }
    // Column-side maintenance only: the root's row already took every
    // loser neighbor via the word-wise OR above, and the loser's row is
    // zeroed wholesale below. Only rows touched here lose their
    // materialized neighbor lists; the rest of the lazy cache stays warm.
    const unsigned LoserWord = Loser >> 6;
    const uint64_t LoserMask = ~(uint64_t(1) << (Loser & 63));
    for (unsigned X : LoserAdjList) {
      ClassEdges.row(X)[LoserWord] &= LoserMask;
      AdjStamp[X] = 0;
    }
    const unsigned RootWord = Root >> 6;
    const uint64_t RootBit = uint64_t(1) << (Root & 63);
    for (unsigned X : NewNeighbors)
      ClassEdges.row(X)[RootWord] |= RootBit;
    uint64_t *RLMut = ClassEdges.row(Loser);
    for (unsigned W = 0; W < Words; ++W)
      RLMut[W] = 0;
    Deg[Root] += static_cast<unsigned>(NewNeighbors.size());
    for (unsigned X : Commons)
      --Deg[X];
    // Deg[Loser] freezes at its pre-merge value for exact LIFO rollback.
    AdjStamp[Root] = 0;
    AdjStamp[Loser] = 0;
  } else {
    // Copy the loser's row out of the arena first: every arena mutation
    // below may relocate rows or compact the pool, so spans cannot be
    // held across the relink.
    VertexSpan LoserRow = ClassArena.row(Loser);
    LoserAdjList.assign(LoserRow.begin(), LoserRow.end());
    VertexSpan RootRow = ClassArena.row(Root);

    // Loser neighbors not already adjacent to Root (both rows sorted).
    NewNeighbors.reserve(LoserAdjList.size());
    std::set_difference(LoserAdjList.begin(), LoserAdjList.end(),
                        RootRow.begin(), RootRow.end(),
                        std::back_inserter(NewNeighbors));
    if (NeedCommons) {
      Commons.reserve(LoserAdjList.size() - NewNeighbors.size());
      std::set_difference(LoserAdjList.begin(), LoserAdjList.end(),
                          NewNeighbors.begin(), NewNeighbors.end(),
                          std::back_inserter(Commons));
    }

    // Relink the loser's neighbors: drop Loser everywhere, add Root where
    // it was not already adjacent. canMerge guarantees Root is not in the
    // loser's row.
    for (unsigned X : LoserAdjList) {
      [[maybe_unused]] bool Erased = ClassArena.erase(X, Loser);
      assert(Erased && "asymmetric class adjacency");
    }
    for (unsigned X : NewNeighbors)
      ClassArena.insert(X, Root);
    ClassArena.mergeSorted(Root, NewNeighbors);
    ClassArena.clearRow(Loser);

    if (CacheK) {
      // Mirror the relink on whatever tiled rows exist, keeping every
      // built row equal to its CSR row. The loser's own tiles freeze with
      // its frozen SigCount when speculating (rollback revives them as
      // they stand); a committed merge releases the storage.
      for (unsigned X : LoserAdjList)
        Tiles.clearIfBuilt(X, Loser);
      for (unsigned X : NewNeighbors)
        Tiles.setIfBuilt(X, Root);
      if (Tiles.built(Root))
        for (unsigned X : NewNeighbors)
          Tiles.set(Root, X);
      if (Marks.empty())
        Tiles.releaseRow(Loser);
    }
  }

  unsigned RootMembersBefore = static_cast<unsigned>(Members[Root].size());
  for (unsigned M : Members[Loser])
    Rep[M] = Root;
  Members[Root].insert(Members[Root].end(), Members[Loser].begin(),
                       Members[Loser].end());
  --NumClasses;

  if (NeedCommons) {
    if (CacheK)
      updateDegreeCache(Root, Loser, LoserAdjList, NewNeighbors, Commons,
                        /*Undo=*/false);
    if (Observer)
      Observer->onMergeTouched(Root, Loser, Commons);
  }

  if (!Marks.empty()) {
    // Speculating: park the loser's adjacency in the undo-log so rollback
    // can restore it without rebuilding.
    MergeRecord Rec;
    Rec.Root = Root;
    Rec.Loser = Loser;
    Rec.RootMembersBefore = RootMembersBefore;
    Rec.RankBumped = RankBumped;
    Rec.LoserAdj = std::move(LoserAdjList);
    Rec.LoserMembers = std::move(Members[Loser]);
    Rec.NewRootNeighbors = std::move(NewNeighbors);
    if (Dense)
      ClassAdj[Loser].clear();
    Members[Loser].clear();
    UndoLog.push_back(std::move(Rec));
  } else {
    // Committed for good: release the loser's storage instead of leaving
    // it alive for the rest of the run.
    if (Dense)
      std::vector<unsigned>().swap(ClassAdj[Loser]);
    std::vector<unsigned>().swap(Members[Loser]);
  }

  note(EngineEvent::MergeCommitted, Root, Loser);
  return Root;
}

void WorkGraph::undoMerge(MergeRecord &Rec) {
  unsigned Root = Rec.Root, Loser = Rec.Loser;
  if (Rec.RankBumped)
    --Rank[Root];

  std::vector<unsigned> Commons;
  if (CacheK) {
    Commons.reserve(Rec.LoserAdj.size() - Rec.NewRootNeighbors.size());
    std::set_difference(Rec.LoserAdj.begin(), Rec.LoserAdj.end(),
                        Rec.NewRootNeighbors.begin(),
                        Rec.NewRootNeighbors.end(),
                        std::back_inserter(Commons));
  }
  if (CacheK) {
    // Reverse the cache deltas while degrees and rows still reflect the
    // post-merge state the deltas were computed against.
    updateDegreeCache(Root, Loser, Rec.LoserAdj, Rec.NewRootNeighbors,
                      Commons, /*Undo=*/true);
  }

  Members[Root].resize(Rec.RootMembersBefore);
  Members[Loser] = std::move(Rec.LoserMembers);
  for (unsigned M : Members[Loser])
    Rep[M] = Loser;

  if (Dense) {
    // Take back the root-side bits the merge added, revive the loser's
    // row and column, and restore the degree deltas. Commons =
    // LoserAdj \ NewRootNeighbors, both sorted ascending, the latter a
    // subset of the former — walked inline without materializing.
    uint64_t *RRoot = ClassEdges.row(Root);
    const unsigned RootWord = Root >> 6;
    const uint64_t RootMask = ~(uint64_t(1) << (Root & 63));
    for (unsigned X : Rec.NewRootNeighbors) {
      RRoot[X >> 6] &= ~(uint64_t(1) << (X & 63));
      ClassEdges.row(X)[RootWord] &= RootMask;
    }
    uint64_t *RLoser = ClassEdges.row(Loser);
    const unsigned LoserWord = Loser >> 6;
    const uint64_t LoserBit = uint64_t(1) << (Loser & 63);
    auto It = Rec.NewRootNeighbors.begin();
    auto End = Rec.NewRootNeighbors.end();
    for (unsigned X : Rec.LoserAdj) {
      RLoser[X >> 6] |= uint64_t(1) << (X & 63);
      ClassEdges.row(X)[LoserWord] |= LoserBit;
      AdjStamp[X] = 0;
      if (It != End && *It == X) {
        ++It;
        continue;
      }
      ++Deg[X];
    }
    Deg[Root] -= static_cast<unsigned>(Rec.NewRootNeighbors.size());
    AdjStamp[Root] = 0;
    // The recorded list is exactly the revived row (sorted), so the
    // loser's materialization comes back valid for free.
    ClassAdj[Loser] = std::move(Rec.LoserAdj);
    AdjStamp[Loser] = 1;
  } else {
    // Undo the adjacency relink: take back the root-side entries the merge
    // added, then revive the loser's row from the record.
    for (unsigned X : Rec.NewRootNeighbors) {
      [[maybe_unused]] bool Erased = ClassArena.erase(X, Root);
      assert(Erased && "undo of unrecorded neighbor");
    }
    ClassArena.removeSorted(Root, Rec.NewRootNeighbors);
    ClassArena.assignRow(Loser, Rec.LoserAdj);
    for (unsigned X : Rec.LoserAdj)
      ClassArena.insert(X, Loser);

    if (CacheK) {
      // The exact reverse of the merge-side tile maintenance. This also
      // holds for rows tiled only after the merge: they were built from
      // the post-merge CSR state, and these ops map post-merge to
      // pre-merge. The loser's frozen tiles (if any) are correct again
      // the moment its row revives.
      if (Tiles.built(Root))
        for (unsigned X : Rec.NewRootNeighbors)
          Tiles.clear(Root, X);
      for (unsigned X : Rec.NewRootNeighbors)
        Tiles.clearIfBuilt(X, Root);
      for (unsigned X : Rec.LoserAdj)
        Tiles.setIfBuilt(X, Loser);
    }
  }

  ++NumClasses;
  note(EngineEvent::MergeRolledBack, Root, Loser);
}

WorkGraph::Checkpoint WorkGraph::checkpoint() {
  if (Cancel)
    Cancel->poll();
  Marks.push_back(UndoLog.size());
  note(EngineEvent::CheckpointTaken);
  return UndoLog.size();
}

void WorkGraph::rollback() {
  assert(!Marks.empty() && "rollback without an active checkpoint");
  size_t Target = Marks.back();
  Marks.pop_back();
  while (UndoLog.size() > Target) {
    undoMerge(UndoLog.back());
    UndoLog.pop_back();
  }
  note(EngineEvent::RollbackPerformed);
}

void WorkGraph::rollbackTo(Checkpoint C) {
  assert(!Marks.empty() && Marks.front() <= C &&
         "rolling back past every active checkpoint");
  while (!Marks.empty() && Marks.back() > C)
    Marks.pop_back();
  while (UndoLog.size() > C) {
    undoMerge(UndoLog.back());
    UndoLog.pop_back();
  }
  note(EngineEvent::RollbackPerformed);
}

void WorkGraph::commit() {
  assert(!Marks.empty() && "commit without an active checkpoint");
  Marks.pop_back();
  if (Marks.empty()) {
    // The parked losers are now dead for good; drop their frozen tiles
    // along with the undo-log.
    if (!Dense && CacheK)
      for (const MergeRecord &Rec : UndoLog)
        Tiles.releaseRow(Rec.Loser);
    UndoLog.clear();
    UndoLog.shrink_to_fit();
  }
}

CoalescingSolution WorkGraph::solution() const {
  unsigned N = numOriginalVertices();
  CoalescingSolution S;
  S.ClassIds.assign(N, 0);
  // Dense ids in order of first appearance by vertex id, matching
  // UnionFind::denseClassIds.
  std::vector<unsigned> DenseId(N, ~0u);
  unsigned Next = 0;
  for (unsigned V = 0; V < N; ++V) {
    unsigned R = Rep[V];
    if (DenseId[R] == ~0u)
      DenseId[R] = Next++;
    S.ClassIds[V] = DenseId[R];
  }
  assert(Next == NumClasses && "class count out of sync");
  S.NumClasses = Next;
  return S;
}

Graph WorkGraph::quotientGraph() const {
  CoalescingSolution S = solution();
  return Original.quotient(S.ClassIds, S.NumClasses);
}

bool WorkGraph::quotientGreedyKColorable(
    unsigned K, std::vector<unsigned> *StuckReps) const {
  if (Cancel)
    Cancel->poll();
  note(EngineEvent::ColorabilityCheck);
  ScopedMicros Timer(Telemetry ? &Telemetry->ColorabilityMicros : nullptr);

  // Greedy elimination (empty-k-core test, Section 2.2) directly over the
  // class adjacency: repeatedly remove classes of degree < k. The result
  // is elimination-order independent, so it equals running greedyEliminate
  // on a materialized quotient.
  unsigned N = numOriginalVertices();
  std::vector<unsigned> DegLeft(N, 0);
  std::vector<bool> Removed(N, true);
  std::vector<unsigned> Queue;
  for (unsigned V = 0; V < N; ++V) {
    if (Rep[V] != V)
      continue;
    Removed[V] = false;
    DegLeft[V] = classDegree(V);
    if (DegLeft[V] < K)
      Queue.push_back(V);
  }
  unsigned Eliminated = 0;
  while (!Queue.empty()) {
    unsigned V = Queue.back();
    Queue.pop_back();
    if (Removed[V])
      continue;
    Removed[V] = true;
    ++Eliminated;
    // In dense mode this rides the lazy neighbor-list cache: repeated
    // colorability checks (brute-force probing) re-materialize only the
    // lists a merge invalidated, and iterate warm contiguous vectors
    // everywhere else.
    VertexSpan Nbrs =
        Dense ? VertexSpan(materializedNeighbors(V)) : ClassArena.row(V);
    for (unsigned W : Nbrs) {
      if (Removed[W])
        continue;
      if (DegLeft[W]-- == K)
        Queue.push_back(W);
    }
  }
  if (StuckReps) {
    StuckReps->clear();
    if (Eliminated != NumClasses)
      for (unsigned V = 0; V < N; ++V)
        if (Rep[V] == V && !Removed[V])
          StuckReps->push_back(V);
  }
  return Eliminated == NumClasses;
}
