//===- coalescing/WorkGraph.cpp - Unified coalescing merge engine ---------===//

#include "coalescing/WorkGraph.h"

using namespace rc;

WorkGraph::WorkGraph(const Graph &G, unsigned DenseThreshold)
    : Original(G), Dense(G.numVertices() <= DenseThreshold),
      Rep(G.numVertices()), Rank(G.numVertices(), 0),
      ClassAdj(G.numVertices()), Members(G.numVertices()),
      NumClasses(G.numVertices()) {
  if (Dense)
    ClassEdges = G.edgeMatrix();
  for (unsigned V = 0; V < G.numVertices(); ++V) {
    Rep[V] = V;
    Members[V] = {V};
    ClassAdj[V] = G.neighbors(V);
    std::sort(ClassAdj[V].begin(), ClassAdj[V].end());
  }
}

unsigned WorkGraph::merge(unsigned U, unsigned V) {
  assert(canMerge(U, V) && "merging interfering or identical classes");
  if (Cancel)
    Cancel->poll();
  unsigned CU = Rep[U], CV = Rep[V];
  // Union by rank, replicating support/UnionFind::merge(CU, CV): the higher
  // rank wins; on a tie the first argument wins and its rank is bumped.
  unsigned Root = Rank[CU] >= Rank[CV] ? CU : CV;
  unsigned Loser = Root == CU ? CV : CU;
  bool RankBumped = Rank[Root] == Rank[Loser];
  if (RankBumped)
    ++Rank[Root];

  std::vector<unsigned> &RootAdj = ClassAdj[Root];
  std::vector<unsigned> &LoserAdj = ClassAdj[Loser];

  // Loser neighbors not already adjacent to Root (both lists sorted).
  std::vector<unsigned> NewNeighbors;
  std::set_difference(LoserAdj.begin(), LoserAdj.end(), RootAdj.begin(),
                      RootAdj.end(), std::back_inserter(NewNeighbors));

  // Relink the loser's neighbors: drop Loser everywhere, add Root where it
  // was not already adjacent. canMerge guarantees Root is not in LoserAdj.
  for (unsigned X : LoserAdj) {
    std::vector<unsigned> &XA = ClassAdj[X];
    auto It = std::lower_bound(XA.begin(), XA.end(), Loser);
    assert(It != XA.end() && *It == Loser && "asymmetric class adjacency");
    XA.erase(It);
  }
  for (unsigned X : NewNeighbors) {
    std::vector<unsigned> &XA = ClassAdj[X];
    XA.insert(std::lower_bound(XA.begin(), XA.end(), Root), Root);
    if (Dense)
      ClassEdges.set(Root, X);
  }
  if (!NewNeighbors.empty()) {
    std::vector<unsigned> Merged;
    Merged.reserve(RootAdj.size() + NewNeighbors.size());
    std::merge(RootAdj.begin(), RootAdj.end(), NewNeighbors.begin(),
               NewNeighbors.end(), std::back_inserter(Merged));
    RootAdj.swap(Merged);
  }

  unsigned RootMembersBefore = static_cast<unsigned>(Members[Root].size());
  for (unsigned M : Members[Loser])
    Rep[M] = Root;
  Members[Root].insert(Members[Root].end(), Members[Loser].begin(),
                       Members[Loser].end());
  --NumClasses;

  if (!Marks.empty()) {
    // Speculating: park the loser's storage in the undo-log so rollback
    // can restore it without rebuilding.
    MergeRecord Rec;
    Rec.Root = Root;
    Rec.Loser = Loser;
    Rec.RootMembersBefore = RootMembersBefore;
    Rec.RankBumped = RankBumped;
    Rec.LoserAdj = std::move(ClassAdj[Loser]);
    Rec.LoserMembers = std::move(Members[Loser]);
    Rec.NewRootNeighbors = std::move(NewNeighbors);
    ClassAdj[Loser].clear();
    Members[Loser].clear();
    UndoLog.push_back(std::move(Rec));
  } else {
    // Committed for good: release the loser's storage instead of leaving
    // it alive for the rest of the run.
    std::vector<unsigned>().swap(ClassAdj[Loser]);
    std::vector<unsigned>().swap(Members[Loser]);
  }

  note(EngineEvent::MergeCommitted, Root, Loser);
  return Root;
}

void WorkGraph::undoMerge(MergeRecord &Rec) {
  unsigned Root = Rec.Root, Loser = Rec.Loser;
  if (Rec.RankBumped)
    --Rank[Root];

  Members[Root].resize(Rec.RootMembersBefore);
  Members[Loser] = std::move(Rec.LoserMembers);
  for (unsigned M : Members[Loser])
    Rep[M] = Loser;

  // Undo the adjacency relink. Bits between the (dead) Loser and its
  // neighbors were never cleared, so only the Root-side bits move.
  for (unsigned X : Rec.NewRootNeighbors) {
    std::vector<unsigned> &XA = ClassAdj[X];
    auto It = std::lower_bound(XA.begin(), XA.end(), Root);
    assert(It != XA.end() && *It == Root && "undo of unrecorded neighbor");
    XA.erase(It);
    if (Dense)
      ClassEdges.clear(Root, X);
  }
  if (!Rec.NewRootNeighbors.empty()) {
    std::vector<unsigned> &RootAdj = ClassAdj[Root];
    std::vector<unsigned> Restored;
    Restored.reserve(RootAdj.size() - Rec.NewRootNeighbors.size());
    std::set_difference(RootAdj.begin(), RootAdj.end(),
                        Rec.NewRootNeighbors.begin(),
                        Rec.NewRootNeighbors.end(),
                        std::back_inserter(Restored));
    RootAdj.swap(Restored);
  }
  ClassAdj[Loser] = std::move(Rec.LoserAdj);
  for (unsigned X : ClassAdj[Loser]) {
    std::vector<unsigned> &XA = ClassAdj[X];
    XA.insert(std::lower_bound(XA.begin(), XA.end(), Loser), Loser);
  }

  ++NumClasses;
  note(EngineEvent::MergeRolledBack, Root, Loser);
}

WorkGraph::Checkpoint WorkGraph::checkpoint() {
  if (Cancel)
    Cancel->poll();
  Marks.push_back(UndoLog.size());
  note(EngineEvent::CheckpointTaken);
  return UndoLog.size();
}

void WorkGraph::rollback() {
  assert(!Marks.empty() && "rollback without an active checkpoint");
  size_t Target = Marks.back();
  Marks.pop_back();
  while (UndoLog.size() > Target) {
    undoMerge(UndoLog.back());
    UndoLog.pop_back();
  }
  note(EngineEvent::RollbackPerformed);
}

void WorkGraph::rollbackTo(Checkpoint C) {
  assert(!Marks.empty() && Marks.front() <= C &&
         "rolling back past every active checkpoint");
  while (!Marks.empty() && Marks.back() > C)
    Marks.pop_back();
  while (UndoLog.size() > C) {
    undoMerge(UndoLog.back());
    UndoLog.pop_back();
  }
  note(EngineEvent::RollbackPerformed);
}

void WorkGraph::commit() {
  assert(!Marks.empty() && "commit without an active checkpoint");
  Marks.pop_back();
  if (Marks.empty()) {
    UndoLog.clear();
    UndoLog.shrink_to_fit();
  }
}

CoalescingSolution WorkGraph::solution() const {
  unsigned N = numOriginalVertices();
  CoalescingSolution S;
  S.ClassIds.assign(N, 0);
  // Dense ids in order of first appearance by vertex id, matching
  // UnionFind::denseClassIds.
  std::vector<unsigned> DenseId(N, ~0u);
  unsigned Next = 0;
  for (unsigned V = 0; V < N; ++V) {
    unsigned R = Rep[V];
    if (DenseId[R] == ~0u)
      DenseId[R] = Next++;
    S.ClassIds[V] = DenseId[R];
  }
  assert(Next == NumClasses && "class count out of sync");
  S.NumClasses = Next;
  return S;
}

Graph WorkGraph::quotientGraph() const {
  CoalescingSolution S = solution();
  return Original.quotient(S.ClassIds, S.NumClasses);
}

bool WorkGraph::quotientGreedyKColorable(
    unsigned K, std::vector<unsigned> *StuckReps) const {
  if (Cancel)
    Cancel->poll();
  note(EngineEvent::ColorabilityCheck);
  ScopedMicros Timer(Telemetry ? &Telemetry->ColorabilityMicros : nullptr);

  // Greedy elimination (empty-k-core test, Section 2.2) directly over the
  // class adjacency: repeatedly remove classes of degree < k. The result
  // is elimination-order independent, so it equals running greedyEliminate
  // on a materialized quotient.
  unsigned N = numOriginalVertices();
  std::vector<unsigned> Deg(N, 0);
  std::vector<bool> Removed(N, true);
  std::vector<unsigned> Queue;
  for (unsigned V = 0; V < N; ++V) {
    if (Rep[V] != V)
      continue;
    Removed[V] = false;
    Deg[V] = static_cast<unsigned>(ClassAdj[V].size());
    if (Deg[V] < K)
      Queue.push_back(V);
  }
  unsigned Eliminated = 0;
  while (!Queue.empty()) {
    unsigned V = Queue.back();
    Queue.pop_back();
    if (Removed[V])
      continue;
    Removed[V] = true;
    ++Eliminated;
    for (unsigned W : ClassAdj[V]) {
      if (Removed[W])
        continue;
      if (Deg[W]-- == K)
        Queue.push_back(W);
    }
  }
  if (StuckReps) {
    StuckReps->clear();
    if (Eliminated != NumClasses)
      for (unsigned V = 0; V < N; ++V)
        if (Rep[V] == V && !Removed[V])
          StuckReps->push_back(V);
  }
  return Eliminated == NumClasses;
}
