//===- coalescing/WorkGraph.cpp - Mergeable interference graph ------------===//

#include "coalescing/WorkGraph.h"

using namespace rc;

WorkGraph::WorkGraph(const Graph &G)
    : Original(G), UF(G.numVertices()), Adj(G.numVertices()),
      Members(G.numVertices()) {
  for (unsigned V = 0; V < G.numVertices(); ++V) {
    Members[V] = {V};
    for (unsigned W : G.neighbors(V))
      Adj[V].insert(W);
  }
}

bool WorkGraph::interfere(unsigned U, unsigned V) const {
  unsigned CU = classOf(U), CV = classOf(V);
  if (CU == CV)
    return false;
  // Query from the smaller adjacency set.
  if (Adj[CU].size() > Adj[CV].size())
    std::swap(CU, CV);
  return Adj[CU].count(CV) != 0;
}

unsigned WorkGraph::merge(unsigned U, unsigned V) {
  assert(canMerge(U, V) && "merging interfering or identical classes");
  unsigned CU = classOf(U), CV = classOf(V);
  UF.merge(CU, CV);
  unsigned Root = UF.find(CU);
  unsigned Loser = Root == CU ? CV : CU;

  for (unsigned N : Adj[Loser]) {
    Adj[N].erase(Loser);
    Adj[N].insert(Root);
    Adj[Root].insert(N);
  }
  Adj[Loser].clear();

  Members[Root].insert(Members[Root].end(), Members[Loser].begin(),
                       Members[Loser].end());
  Members[Loser].clear();
  Members[Loser].shrink_to_fit();
  return Root;
}

CoalescingSolution WorkGraph::solution() const {
  CoalescingSolution S;
  S.ClassIds = UF.denseClassIds();
  S.NumClasses = UF.numClasses();
  return S;
}

Graph WorkGraph::quotientGraph() const {
  CoalescingSolution S = solution();
  return Original.quotient(S.ClassIds, S.NumClasses);
}
