//===- coalescing/Conservative.cpp - Conservative coalescing --------------===//

#include "coalescing/Conservative.h"

#include "graph/ExactColoring.h"
#include "graph/GreedyColorability.h"

#include <algorithm>
#include <numeric>

using namespace rc;

bool rc::briggsTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K) {
  WG.note(EngineEvent::BriggsTestRun, U, V);
  unsigned CU = WG.classOf(U), CV = WG.classOf(V);
  assert(CU != CV && "testing a merge of one class with itself");
  // Count neighbors of the merged node whose post-merge degree is >= k.
  // A common neighbor of CU and CV loses one neighbor in the merge.
  unsigned HighDegree = 0;
  for (unsigned N : WG.neighborClasses(CU)) {
    if (N == CV)
      continue;
    unsigned Deg = WG.degree(N);
    if (WG.classesAdjacent(CV, N))
      --Deg;
    if (Deg >= K)
      ++HighDegree;
  }
  for (unsigned N : WG.neighborClasses(CV)) {
    if (N == CU || WG.classesAdjacent(CU, N))
      continue; // Common neighbors were counted in the first loop.
    if (WG.degree(N) >= K)
      ++HighDegree;
  }
  bool Passed = HighDegree < K;
  if (Passed)
    WG.note(EngineEvent::BriggsTestPassed, U, V);
  return Passed;
}

bool rc::georgeTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K) {
  WG.note(EngineEvent::GeorgeTestRun, U, V);
  unsigned CU = WG.classOf(U), CV = WG.classOf(V);
  assert(CU != CV && "testing a merge of one class with itself");
  for (unsigned N : WG.neighborClasses(CU)) {
    if (N == CV)
      continue;
    if (WG.degree(N) >= K && !WG.classesAdjacent(CV, N))
      return false;
  }
  WG.note(EngineEvent::GeorgeTestPassed, U, V);
  return true;
}

bool rc::bruteForceTest(WorkGraph &WG, unsigned U, unsigned V, unsigned K) {
  WG.note(EngineEvent::BruteForceTestRun, U, V);
  WG.checkpoint();
  WG.merge(U, V);
  bool Passed = WG.quotientGreedyKColorable(K);
  WG.rollback();
  if (Passed)
    WG.note(EngineEvent::BruteForceTestPassed, U, V);
  return Passed;
}

static bool ruleAllows(WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                       ConservativeRule Rule) {
  switch (Rule) {
  case ConservativeRule::Briggs:
    return briggsTest(WG, U, V, K);
  case ConservativeRule::George:
    // The test is asymmetric; try both directions.
    return georgeTest(WG, U, V, K) || georgeTest(WG, V, U, K);
  case ConservativeRule::BriggsOrGeorge:
    return briggsTest(WG, U, V, K) || georgeTest(WG, U, V, K) ||
           georgeTest(WG, V, U, K);
  case ConservativeRule::BruteForce:
    return bruteForceTest(WG, U, V, K);
  }
  return false;
}

ConservativeResult rc::conservativeCoalesce(const CoalescingProblem &P,
                                            ConservativeRule Rule,
                                            CoalescingTelemetry *Telemetry,
                                            const CancelToken *Cancel) {
  WorkGraph WG(P.G);
  WG.attachTelemetry(Telemetry);
  WG.setCancelToken(Cancel);
  std::vector<unsigned> Order(P.Affinities.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

  [[maybe_unused]] bool InputGreedy = isGreedyKColorable(P.G, P.K);

  ConservativeResult Result;
  std::vector<bool> Done(P.Affinities.size(), false);
  bool Progress = true;
  while (Progress && !Result.TimedOut) {
    Progress = false;
    if (Cancel)
      Cancel->pollNow();
    Result.TestRejections = 0;
    Result.InterferenceRejections = 0;
    for (unsigned Idx : Order) {
      if (WG.cancelRequested()) {
        Result.TimedOut = true;
        break;
      }
      if (Done[Idx])
        continue;
      const Affinity &A = P.Affinities[Idx];
      if (WG.sameClass(A.U, A.V)) {
        Done[Idx] = true;
        continue;
      }
      WG.note(EngineEvent::MergeAttempted, A.U, A.V);
      if (WG.interfere(A.U, A.V)) {
        ++Result.InterferenceRejections;
        continue;
      }
      if (!ruleAllows(WG, A.U, A.V, P.K, Rule)) {
        ++Result.TestRejections;
        continue;
      }
      WG.merge(A.U, A.V);
      Done[Idx] = true;
      Progress = true;
    }
  }

  Result.Solution = WG.solution();
  Result.Stats = evaluateSolution(P, Result.Solution);
  // All three tests preserve greedy-k-colorability (Section 4); check it.
  assert((!InputGreedy ||
          isGreedyKColorable(buildCoalescedGraph(P.G, Result.Solution),
                             P.K)) &&
         "conservative rule broke greedy-k-colorability");
  return Result;
}

namespace {

/// Exhaustive include/exclude search over affinities with a feasibility
/// check (k-colorability of the quotient) at the leaves. Branches merge on
/// the shared engine under a checkpoint and roll back on return instead of
/// copying the graph.
class ExactConservativeSearch {
public:
  ExactConservativeSearch(const CoalescingProblem &P, bool RequireGreedy,
                          uint64_t NodeLimit, const CancelToken *Cancel)
      : P(P), WG(P.G), RequireGreedy(RequireGreedy), NodeLimit(NodeLimit) {
    WG.setCancelToken(Cancel);
    SuffixWeight.assign(P.Affinities.size() + 1, 0);
    for (size_t I = P.Affinities.size(); I > 0; --I)
      SuffixWeight[I - 1] = SuffixWeight[I] + P.Affinities[I - 1].Weight;
  }

  ExactConservativeResult run() {
    recurse(0, 0.0);
    ExactConservativeResult Result;
    if (HasBest) {
      Result.Solution = Best;
    } else {
      // Even the identity may be infeasible (G itself not k-colorable);
      // report the identity partition with Optimal=false in that case.
      Result.Solution = identitySolution(P.G);
    }
    Result.Stats = evaluateSolution(P, Result.Solution);
    Result.Optimal = HasBest && !LimitHit && !CancelHit;
    Result.NodesExplored = Nodes;
    Result.TimedOut = CancelHit;
    return Result;
  }

private:
  bool feasible() {
    if (RequireGreedy)
      return WG.quotientGreedyKColorable(P.K);
    return exactKColoring(WG.quotientGraph(), P.K).Colorable;
  }

  void recurse(size_t Index, double Gained) {
    if (LimitHit || CancelHit)
      return;
    if (WG.cancelRequested()) {
      // Unwinds through the pending rollback() calls below, so the engine
      // lands back in its consistent pre-search state.
      CancelHit = true;
      return;
    }
    if (++Nodes > NodeLimit) {
      LimitHit = true;
      return;
    }
    if (HasBest && Gained + SuffixWeight[Index] <= BestWeight + 1e-12)
      return;
    if (Index == P.Affinities.size()) {
      if (!feasible())
        return;
      Best = WG.solution();
      BestWeight = Gained;
      HasBest = true;
      return;
    }
    const Affinity &A = P.Affinities[Index];
    if (WG.sameClass(A.U, A.V)) {
      recurse(Index + 1, Gained + A.Weight);
      return;
    }
    if (!WG.interfere(A.U, A.V)) {
      WG.checkpoint();
      WG.merge(A.U, A.V);
      recurse(Index + 1, Gained + A.Weight);
      WG.rollback();
    }
    recurse(Index + 1, Gained);
  }

  const CoalescingProblem &P;
  WorkGraph WG;
  bool RequireGreedy;
  uint64_t NodeLimit;
  uint64_t Nodes = 0;
  bool LimitHit = false;
  bool CancelHit = false;
  bool HasBest = false;
  std::vector<double> SuffixWeight;
  CoalescingSolution Best;
  double BestWeight = -1;
};

} // namespace

ExactConservativeResult
rc::conservativeCoalesceExact(const CoalescingProblem &P, bool RequireGreedy,
                              uint64_t NodeLimit,
                              const CancelToken *Cancel) {
  return ExactConservativeSearch(P, RequireGreedy, NodeLimit, Cancel).run();
}
