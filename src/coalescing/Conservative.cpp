//===- coalescing/Conservative.cpp - Conservative coalescing --------------===//

#include "coalescing/Conservative.h"

#include "graph/ExactColoring.h"
#include "graph/GreedyColorability.h"

#include <algorithm>
#include <numeric>

using namespace rc;

/// Counts the neighbor classes of the merged node (CU u CV) whose
/// post-merge degree is >= K by walking the neighbor sets — the original
/// O(deg(u)+deg(v)) set-probing test. A common neighbor of CU and CV loses
/// one neighbor in the merge and is counted once. With \p Blockers,
/// additionally collects the counted classes.
static unsigned briggsHighDegreeWalk(const WorkGraph &WG, unsigned CU,
                                     unsigned CV, unsigned K,
                                     std::vector<unsigned> *Blockers) {
  unsigned HighDegree = 0;
  for (unsigned N : WG.neighborClasses(CU)) {
    if (N == CV)
      continue;
    unsigned Deg = WG.degree(N);
    if (WG.classesAdjacent(CV, N))
      --Deg;
    if (Deg >= K) {
      ++HighDegree;
      if (Blockers)
        Blockers->push_back(N);
    }
  }
  for (unsigned N : WG.neighborClasses(CV)) {
    if (N == CU || WG.classesAdjacent(CU, N))
      continue; // Common neighbors were counted in the first loop.
    if (WG.degree(N) >= K) {
      ++HighDegree;
      if (Blockers)
        Blockers->push_back(N);
    }
  }
  return HighDegree;
}

bool rc::briggsTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                    std::vector<unsigned> *Blockers) {
  WG.note(EngineEvent::BriggsTestRun, U, V);
  unsigned CU = WG.classOf(U), CV = WG.classOf(V);
  assert(CU != CV && "testing a merge of one class with itself");
  bool Passed;
  bool Decided = false;
  if (WG.degreeCacheK() == K) {
    if (WG.usesDenseAdjacency()) {
      // One masked sweep counts the high-degree neighbors of the merged
      // node directly: significant neighbors of the union minus commons at
      // exactly K (which drop below the threshold when the merge takes
      // their shared neighbor). Interfering endpoints count themselves
      // when significant, so the bar is raised to compensate; the sweep
      // aborts as soon as failure is certain.
      unsigned Limit = K;
      if (WG.classesAdjacent(CU, CV)) {
        if (WG.degree(V) >= K)
          ++Limit;
        if (WG.degree(U) >= K)
          ++Limit;
      }
      Passed = WG.briggsHighDegreeBelow(CU, CV, Limit);
      Decided = true;
    } else if (WG.significantNeighbors(CU) + WG.significantNeighbors(CV) <
               K) {
      // The high-degree count is at most SU + SV (overlap corrections only
      // shrink it), so the test passes without looking at any neighbor.
      Passed = true;
      Decided = true;
    } else {
      // Sparse cached sweep: stamped scratch rows make common-neighbor
      // checks O(1), so the count costs O(deg(u) + deg(v)) instead of the
      // walk's binary search per neighbor. The sweep skips the endpoints
      // like the walk does, so the limit needs no adjacency correction.
      Passed = WG.briggsHighDegreeBelowSparse(CU, CV, K);
      Decided = true;
    }
  }
  if (!Decided)
    Passed = briggsHighDegreeWalk(WG, CU, CV, K, nullptr) < K;
  if (!Passed && Blockers) {
    if (WG.degreeCacheK() == K && WG.usesDenseAdjacency())
      WG.appendBriggsHighDegree(CU, CV, *Blockers);
    else if (WG.degreeCacheK() == K)
      WG.appendBriggsHighDegreeSparse(CU, CV, *Blockers);
    else
      briggsHighDegreeWalk(WG, CU, CV, K, Blockers);
  }
  if (Passed)
    WG.note(EngineEvent::BriggsTestPassed, U, V);
  return Passed;
}

/// George's test by walking CU's neighbor set. With \p Witnesses, collects
/// every failing neighbor instead of stopping at the first.
static bool georgeWalk(const WorkGraph &WG, unsigned CU, unsigned CV,
                       unsigned K, std::vector<unsigned> *Witnesses) {
  bool Passed = true;
  for (unsigned N : WG.neighborClasses(CU)) {
    if (N == CV)
      continue;
    if (WG.degree(N) >= K && !WG.classesAdjacent(CV, N)) {
      if (!Witnesses)
        return false;
      Passed = false;
      Witnesses->push_back(N);
    }
  }
  return Passed;
}

bool rc::georgeTest(const WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                    std::vector<unsigned> *Blockers) {
  WG.note(EngineEvent::GeorgeTestRun, U, V);
  unsigned CU = WG.classOf(U), CV = WG.classOf(V);
  assert(CU != CV && "testing a merge of one class with itself");
  bool Passed;
  bool Decided = false;
  if (WG.degreeCacheK() == K) {
    // Pass iff every significant neighbor of CU (other than CV itself) is
    // adjacent to CV.
    if (WG.usesDenseAdjacency()) {
      Passed = WG.georgeWitnessesEmpty(CU, CV);
      Decided = true;
    } else {
      unsigned SU = WG.significantNeighbors(CU);
      if (WG.classesAdjacent(CU, CV) && WG.degree(V) >= K)
        --SU;
      if (SU == 0) {
        Passed = true;
      } else {
        // Sparse cached sweep: stamp CV's row once, then each significant
        // neighbor of CU is one O(1) probe instead of a binary search.
        Passed = WG.georgeWitnessesEmptySparse(CU, CV);
      }
      Decided = true;
    }
  }
  if (!Decided)
    Passed = georgeWalk(WG, CU, CV, K, nullptr);
  if (!Passed && Blockers) {
    if (WG.degreeCacheK() == K && WG.usesDenseAdjacency())
      WG.appendGeorgeWitnesses(CU, CV, *Blockers);
    else if (WG.degreeCacheK() == K)
      WG.appendGeorgeWitnessesSparse(CU, CV, *Blockers);
    else
      georgeWalk(WG, CU, CV, K, Blockers);
  }
  if (Passed)
    WG.note(EngineEvent::GeorgeTestPassed, U, V);
  return Passed;
}

bool rc::bruteForceTest(WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                        std::vector<unsigned> *StuckReps) {
  WG.note(EngineEvent::BruteForceTestRun, U, V);
  WG.checkpoint();
  WG.merge(U, V);
  bool Passed = WG.quotientGreedyKColorable(K, StuckReps);
  WG.rollback();
  if (Passed)
    WG.note(EngineEvent::BruteForceTestPassed, U, V);
  return Passed;
}

namespace {

/// Reactivation plumbing for the incremental driver. Each committed merge
/// stamps the classes it touched with a fresh timestamp; a rejected
/// affinity records the stamp at park time plus its private watch list
/// (endpoints + blockers), and the sweep re-tests it only when a watched
/// class carries a newer stamp. Keeping the watch list with the affinity —
/// instead of an inverted per-class index — makes parking one buffer swap
/// and the wake check a scan of one contiguous vector against a
/// cache-resident stamp table.
///
/// With \p FilterDrops set (the Briggs/George rules), degree drops are
/// stamped only when the class lands on degree K or K-1. A parked
/// rejection can only flip to a pass by losing one of its park-time
/// blockers (the 0/1 contributions to the high-degree count never go
/// negative, so the count cannot fall below its park-time value without
/// one), and every such loss is either a merge consuming the blocker
/// (stamped unconditionally) or a drop across the K / K-1 thresholds.
/// Brute-force rejections watch the stuck k-core, where any degree drop
/// can start a dissolving cascade, so they keep every drop.
class TouchObserver final : public EngineObserver {
public:
  TouchObserver(const WorkGraph &WG, std::vector<uint64_t> &LastTouched,
                std::vector<uint64_t> *WordStamp, unsigned K,
                bool FilterDrops)
      : WG(WG), LastTouched(LastTouched), WordStamp(WordStamp), K(K),
        FilterDrops(FilterDrops) {}

  void onEvent(EngineEvent, unsigned, unsigned) override {}

  void onMergeTouched(unsigned Root, unsigned Loser,
                      const std::vector<unsigned> &DegreeDropped) override {
    if (Suppressed)
      return;
    ++Stamp;
    touch(Root);
    touch(Loser);
    for (unsigned C : DegreeDropped) {
      if (FilterDrops) {
        unsigned D = WG.degree(C);
        if (D + 1 < K || D > K)
          continue;
      }
      touch(C);
    }
  }

  /// True while the driver is inside a speculative probe whose merges are
  /// rolled back immediately and must not wake parked affinities.
  bool Suppressed = false;

  /// Monotone merge counter; LastTouched entries hold the stamp of the
  /// last merge that touched the class.
  uint64_t Stamp = 0;

private:
  void touch(unsigned C) {
    LastTouched[C] = Stamp;
    if (WordStamp)
      (*WordStamp)[C >> 6] = Stamp;
  }

  const WorkGraph &WG;
  std::vector<uint64_t> &LastTouched;
  /// Coarse 64-class summary of LastTouched for bitmask watch sets, or
  /// null in sparse mode (class-list watch sets need no summary).
  std::vector<uint64_t> *WordStamp;
  unsigned K;
  bool FilterDrops;
};

} // namespace

/// Runs \p Rule's safety test(s). On a brute-force rejection, \p StuckReps
/// (when non-null) receives the stuck k-core — the rule's watch set; the
/// Briggs/George watch sets are collected by the caller from the cached
/// masks instead. Brute-force probes suppress \p Probe so their
/// speculative merge does not wake parked affinities.
///
/// \p QuotientGreedy, when non-null, tracks whether the current quotient is
/// known greedy-k-colorable. While it is, a cached Briggs/George pass
/// screens the brute-force probe entirely: both tests preserve
/// greedy-k-colorability (Section 4), so the speculative merge's
/// colorability check is guaranteed to succeed and the accept/reject
/// decision is unchanged. A probe that does run and passes establishes the
/// invariant (it literally verified the post-merge quotient), so the flag
/// needs no up-front whole-graph check.
static bool ruleAllows(WorkGraph &WG, unsigned U, unsigned V, unsigned K,
                       ConservativeRule Rule,
                       std::vector<unsigned> *StuckReps, TouchObserver *Probe,
                       bool *QuotientGreedy) {
  switch (Rule) {
  case ConservativeRule::Briggs:
    return briggsTest(WG, U, V, K);
  case ConservativeRule::George:
    // The test is asymmetric; try both directions.
    return georgeTest(WG, U, V, K) || georgeTest(WG, V, U, K);
  case ConservativeRule::BriggsOrGeorge:
    return briggsTest(WG, U, V, K) || georgeTest(WG, U, V, K) ||
           georgeTest(WG, V, U, K);
  case ConservativeRule::BruteForce: {
    if (QuotientGreedy && *QuotientGreedy &&
        (briggsTest(WG, U, V, K) || georgeTest(WG, U, V, K) ||
         georgeTest(WG, V, U, K))) {
      WG.note(EngineEvent::CachedTestSkip);
      return true;
    }
    if (Probe)
      Probe->Suppressed = true;
    bool Passed = bruteForceTest(WG, U, V, K, StuckReps);
    if (Probe)
      Probe->Suppressed = false;
    if (Passed && QuotientGreedy)
      *QuotientGreedy = true;
    return Passed;
  }
  }
  return false;
}

/// Fills the watch set for a just-rejected affinity: the classes whose
/// state must change before \p Rule's outcome can. Dense mode ORs the
/// cached masks into \p Mask (maskWords() words); sparse mode appends
/// class ids to \p List via the walk helpers. Brute-force rejections watch
/// the stuck core in \p StuckReps. The endpoints are added by the caller.
static void collectWatchSet(const WorkGraph &WG, unsigned CU, unsigned CV,
                            unsigned K, ConservativeRule Rule,
                            const std::vector<unsigned> &StuckReps,
                            uint64_t *Mask, std::vector<unsigned> *List) {
  // Sparse mode with the cache at K (always true in the incremental
  // driver): collect through the merge-walk helpers, which replace the
  // legacy walks' binary search per neighbor with bit-mask probes over the
  // sorted rows. Same blockers in the same order.
  bool Cached = WG.degreeCacheK() == K;
  switch (Rule) {
  case ConservativeRule::Briggs:
    if (Mask)
      WG.briggsWatchWords(CU, CV, Mask);
    else if (Cached)
      WG.appendBriggsHighDegreeSparse(CU, CV, *List);
    else
      briggsHighDegreeWalk(WG, CU, CV, K, List);
    break;
  case ConservativeRule::George:
    if (Mask) {
      WG.georgeWatchWords(CU, CV, Mask);
      WG.georgeWatchWords(CV, CU, Mask);
    } else if (Cached) {
      WG.appendGeorgeWitnessesSparse(CU, CV, *List);
      WG.appendGeorgeWitnessesSparse(CV, CU, *List);
    } else {
      georgeWalk(WG, CU, CV, K, List);
      georgeWalk(WG, CV, CU, K, List);
    }
    break;
  case ConservativeRule::BriggsOrGeorge:
    if (Mask) {
      WG.briggsWatchWords(CU, CV, Mask);
      WG.georgeWatchWords(CU, CV, Mask);
      WG.georgeWatchWords(CV, CU, Mask);
    } else if (Cached) {
      WG.appendBriggsHighDegreeSparse(CU, CV, *List);
      WG.appendGeorgeWitnessesSparse(CU, CV, *List);
      WG.appendGeorgeWitnessesSparse(CV, CU, *List);
    } else {
      briggsHighDegreeWalk(WG, CU, CV, K, List);
      georgeWalk(WG, CU, CV, K, List);
      georgeWalk(WG, CV, CU, K, List);
    }
    break;
  case ConservativeRule::BruteForce:
    if (Mask) {
      for (unsigned C : StuckReps)
        Mask[C >> 6] |= uint64_t(1) << (C & 63);
    } else {
      List->insert(List->end(), StuckReps.begin(), StuckReps.end());
    }
    break;
  }
}

ConservativeResult rc::conservativeCoalesce(const CoalescingProblem &P,
                                            ConservativeRule Rule,
                                            CoalescingTelemetry *Telemetry,
                                            const CancelToken *Cancel) {
  WorkGraph WG(P.G);
  WG.attachTelemetry(Telemetry);
  WG.setCancelToken(Cancel);
  // Rollbacks happen only inside brute-force probes, which never unwind
  // past this point, so the cache enable is safe.
  WG.enableDegreeCache(P.K);

  const unsigned NumAff = static_cast<unsigned>(P.Affinities.size());
  std::vector<unsigned> Order(NumAff);
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

#ifdef RC_EXPENSIVE_CHECKS
  bool InputGreedy = isGreedyKColorable(P.G, P.K);
#endif

  // Every affinity starts untested (due for its first test). A rejected
  // one parks with a stamp and a watch list and is skipped by later sweeps
  // until a merge stamps a watched class. The sweep therefore visits
  // exactly the legacy pass order minus visits whose outcome provably
  // cannot have changed, which keeps the merge sequence (and the solution)
  // identical to the legacy fixpoint driver.
  enum class Category : uint8_t { Untested, TestRejected, Interfering };
  std::vector<Category> Cat(NumAff, Category::Untested);
  std::vector<bool> Done(NumAff, false);
  // Dense mode holds watch sets as bitmask rows (parking is O(words)
  // stores, no per-blocker pushes) with WordStamp as a coarse touch
  // summary; sparse mode holds class-id lists.
  const bool MaskWatch = WG.usesDenseAdjacency();
  const unsigned Words = MaskWatch ? WG.maskWords() : 0;
  std::vector<std::vector<uint64_t>> WatchMask(MaskWatch ? NumAff : 0);
  std::vector<std::vector<unsigned>> WatchList(MaskWatch ? 0 : NumAff);
  std::vector<uint64_t> ParkStamp(NumAff, 0);
  std::vector<uint64_t> LastTouched(P.G.numVertices(), 0);
  std::vector<uint64_t> WordStamp(Words, 0);
  TouchObserver Obs(WG, LastTouched, MaskWatch ? &WordStamp : nullptr, P.K,
                    /*FilterDrops=*/Rule != ConservativeRule::BruteForce);
  WG.setObserver(&Obs);
  if (Telemetry)
    Telemetry->WorklistPushes += NumAff;

  std::vector<unsigned> StuckReps;
  ConservativeResult Result;
  bool QuotientGreedy = false;
  bool Progress = true;
  while (Progress && !Result.TimedOut) {
    Progress = false;
    if (Cancel)
      Cancel->pollNow();
    for (unsigned Idx : Order) {
      if (WG.cancelRequested()) {
        Result.TimedOut = true;
        break;
      }
      if (Done[Idx])
        continue;
      if (Cat[Idx] == Category::Interfering) {
        // Interference between classes is permanent (merging two adjacent
        // classes is impossible, directly or transitively): parked
        // terminally, empty watch set.
        WG.note(EngineEvent::CachedTestSkip);
        continue;
      }
      if (Cat[Idx] == Category::TestRejected) {
        const uint64_t S = ParkStamp[Idx];
        bool Woken = false;
        if (MaskWatch) {
          const std::vector<uint64_t> &M = WatchMask[Idx];
          for (unsigned W = 0; W < Words && !Woken; ++W) {
            if (!M[W] || WordStamp[W] <= S)
              continue;
            for (uint64_t B = M[W]; B; B &= B - 1)
              if (LastTouched[W * 64 +
                              static_cast<unsigned>(std::countr_zero(B))] >
                  S) {
                Woken = true;
                break;
              }
          }
        } else {
          for (unsigned C : WatchList[Idx])
            if (LastTouched[C] > S) {
              Woken = true;
              break;
            }
        }
        if (!Woken) {
          // Parked with every watched class untouched: the legacy driver
          // would re-run the failing test here; the outcome is known.
          WG.note(EngineEvent::CachedTestSkip);
          continue;
        }
        if (Telemetry)
          Telemetry->count(EngineEvent::WorklistReactivation);
      }
      const Affinity &A = P.Affinities[Idx];
      if (WG.sameClass(A.U, A.V)) {
        Done[Idx] = true;
        continue;
      }
      WG.note(EngineEvent::MergeAttempted, A.U, A.V);
      if (WG.interfere(A.U, A.V)) {
        Cat[Idx] = Category::Interfering;
        continue;
      }
      StuckReps.clear();
      if (!ruleAllows(WG, A.U, A.V, P.K, Rule, &StuckReps, &Obs,
                      &QuotientGreedy)) {
        Cat[Idx] = Category::TestRejected;
        ParkStamp[Idx] = Obs.Stamp;
        unsigned CU = WG.classOf(A.U), CV = WG.classOf(A.V);
        if (MaskWatch) {
          std::vector<uint64_t> &M = WatchMask[Idx];
          M.assign(Words, 0);
          collectWatchSet(WG, CU, CV, P.K, Rule, StuckReps, M.data(),
                          nullptr);
          M[CU >> 6] |= uint64_t(1) << (CU & 63);
          M[CV >> 6] |= uint64_t(1) << (CV & 63);
        } else {
          std::vector<unsigned> &L = WatchList[Idx];
          L.clear();
          collectWatchSet(WG, CU, CV, P.K, Rule, StuckReps, nullptr, &L);
          L.push_back(CU);
          L.push_back(CV);
        }
        continue;
      }
      WG.merge(A.U, A.V); // Stamps the touched classes via the observer.
      Done[Idx] = true;
      Progress = true;
    }
  }
  WG.setObserver(nullptr);

  // The rejection counters are the census of parked categories. Every
  // pending category is current — changing one requires a merge that
  // dirties the affinity first — so the census describes the returned
  // solution exactly, even on a mid-sweep timeout (where the legacy driver
  // used to report partially reset per-pass counts).
  for (unsigned Idx = 0; Idx < NumAff; ++Idx) {
    if (Done[Idx])
      continue;
    if (Cat[Idx] == Category::TestRejected)
      ++Result.TestRejections;
    else if (Cat[Idx] == Category::Interfering)
      ++Result.InterferenceRejections;
  }

  Result.Solution = WG.solution();
  Result.Stats = evaluateSolution(P, Result.Solution);
  // All three tests preserve greedy-k-colorability (Section 4). The full
  // rebuild-and-recheck is two orders of magnitude more work than the
  // driver itself at scale, so it compiles in only under
  // -DRC_EXPENSIVE_CHECKS; the coalescer-sound fuzz property checks the
  // same claim continuously.
#ifdef RC_EXPENSIVE_CHECKS
  assert((!InputGreedy ||
          isGreedyKColorable(buildCoalescedGraph(P.G, Result.Solution),
                             P.K)) &&
         "conservative rule broke greedy-k-colorability");
#endif
  return Result;
}

ConservativeResult
rc::conservativeCoalesceLegacy(const CoalescingProblem &P,
                               ConservativeRule Rule,
                               CoalescingTelemetry *Telemetry,
                               const CancelToken *Cancel) {
  WorkGraph WG(P.G);
  WG.attachTelemetry(Telemetry);
  WG.setCancelToken(Cancel);
  std::vector<unsigned> Order(P.Affinities.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

#ifdef RC_EXPENSIVE_CHECKS
  bool InputGreedy = isGreedyKColorable(P.G, P.K);
#endif

  ConservativeResult Result;
  std::vector<bool> Done(P.Affinities.size(), false);
  bool Progress = true;
  while (Progress && !Result.TimedOut) {
    Progress = false;
    if (Cancel)
      Cancel->pollNow();
    Result.TestRejections = 0;
    Result.InterferenceRejections = 0;
    for (unsigned Idx : Order) {
      if (WG.cancelRequested()) {
        Result.TimedOut = true;
        break;
      }
      if (Done[Idx])
        continue;
      const Affinity &A = P.Affinities[Idx];
      if (WG.sameClass(A.U, A.V)) {
        Done[Idx] = true;
        continue;
      }
      WG.note(EngineEvent::MergeAttempted, A.U, A.V);
      if (WG.interfere(A.U, A.V)) {
        ++Result.InterferenceRejections;
        continue;
      }
      if (!ruleAllows(WG, A.U, A.V, P.K, Rule, nullptr, nullptr, nullptr)) {
        ++Result.TestRejections;
        continue;
      }
      WG.merge(A.U, A.V);
      Done[Idx] = true;
      Progress = true;
    }
  }

  Result.Solution = WG.solution();
  Result.Stats = evaluateSolution(P, Result.Solution);
  // All three tests preserve greedy-k-colorability (Section 4). The full
  // rebuild-and-recheck is two orders of magnitude more work than the
  // driver itself at scale, so it compiles in only under
  // -DRC_EXPENSIVE_CHECKS; the coalescer-sound fuzz property checks the
  // same claim continuously.
#ifdef RC_EXPENSIVE_CHECKS
  assert((!InputGreedy ||
          isGreedyKColorable(buildCoalescedGraph(P.G, Result.Solution),
                             P.K)) &&
         "conservative rule broke greedy-k-colorability");
#endif
  return Result;
}

namespace {

/// Exhaustive include/exclude search over affinities with a feasibility
/// check (k-colorability of the quotient) at the leaves. Branches merge on
/// the shared engine under a checkpoint and roll back on return instead of
/// copying the graph.
class ExactConservativeSearch {
public:
  ExactConservativeSearch(const CoalescingProblem &P, bool RequireGreedy,
                          uint64_t NodeLimit, const CancelToken *Cancel)
      : P(P), WG(P.G), RequireGreedy(RequireGreedy), NodeLimit(NodeLimit) {
    WG.setCancelToken(Cancel);
    SuffixWeight.assign(P.Affinities.size() + 1, 0);
    for (size_t I = P.Affinities.size(); I > 0; --I)
      SuffixWeight[I - 1] = SuffixWeight[I] + P.Affinities[I - 1].Weight;
  }

  ExactConservativeResult run() {
    recurse(0, 0.0);
    ExactConservativeResult Result;
    if (HasBest) {
      Result.Solution = Best;
    } else {
      // Even the identity may be infeasible (G itself not k-colorable);
      // report the identity partition with Optimal=false in that case.
      Result.Solution = identitySolution(P.G);
    }
    Result.Stats = evaluateSolution(P, Result.Solution);
    Result.Optimal = HasBest && !LimitHit && !CancelHit;
    Result.NodesExplored = Nodes;
    Result.TimedOut = CancelHit;
    return Result;
  }

private:
  bool feasible() {
    if (RequireGreedy)
      return WG.quotientGreedyKColorable(P.K);
    return exactKColoring(WG.quotientGraph(), P.K).Colorable;
  }

  void recurse(size_t Index, double Gained) {
    if (LimitHit || CancelHit)
      return;
    if (WG.cancelRequested()) {
      // Unwinds through the pending rollback() calls below, so the engine
      // lands back in its consistent pre-search state.
      CancelHit = true;
      return;
    }
    if (++Nodes > NodeLimit) {
      LimitHit = true;
      return;
    }
    if (HasBest && Gained + SuffixWeight[Index] <= BestWeight + 1e-12)
      return;
    if (Index == P.Affinities.size()) {
      if (!feasible())
        return;
      Best = WG.solution();
      BestWeight = Gained;
      HasBest = true;
      return;
    }
    const Affinity &A = P.Affinities[Index];
    if (WG.sameClass(A.U, A.V)) {
      recurse(Index + 1, Gained + A.Weight);
      return;
    }
    if (!WG.interfere(A.U, A.V)) {
      WG.checkpoint();
      WG.merge(A.U, A.V);
      recurse(Index + 1, Gained + A.Weight);
      WG.rollback();
    }
    recurse(Index + 1, Gained);
  }

  const CoalescingProblem &P;
  WorkGraph WG;
  bool RequireGreedy;
  uint64_t NodeLimit;
  uint64_t Nodes = 0;
  bool LimitHit = false;
  bool CancelHit = false;
  bool HasBest = false;
  std::vector<double> SuffixWeight;
  CoalescingSolution Best;
  double BestWeight = -1;
};

} // namespace

ExactConservativeResult
rc::conservativeCoalesceExact(const CoalescingProblem &P, bool RequireGreedy,
                              uint64_t NodeLimit,
                              const CancelToken *Cancel) {
  return ExactConservativeSearch(P, RequireGreedy, NodeLimit, Cancel).run();
}
