//===- coalescing/IteratedRegisterCoalescing.h - IRC ------------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterated register coalescing allocator of George and Appel, the
/// classical framework the paper's introduction describes: interleaved
/// simplify / coalesce / freeze / potential-spill worklists followed by
/// optimistic select-phase coloring. Conservative merges use Briggs' test
/// and optionally George's test (sound here because there is no separate
/// spilling phase interaction, cf. Section 4 of the paper).
///
/// The allocator does not rewrite code on actual spills; it reports the
/// spilled vertices. On greedy-k-colorable inputs there are never spills.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_ITERATEDREGISTERCOALESCING_H
#define COALESCING_ITERATEDREGISTERCOALESCING_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"
#include "graph/Coloring.h"

#include <vector>

namespace rc {

/// Options for the IRC allocator.
struct IrcOptions {
  /// Also accept merges passing George's test (in addition to Briggs').
  bool UseGeorge = true;
  /// Optional per-vertex spill costs; SelectSpill picks the candidate with
  /// minimal cost/degree (Chaitin's heuristic). Uniform costs when empty.
  /// Callers rewriting spill code should give reload temporaries a huge
  /// cost so they are never re-spilled.
  std::vector<double> SpillCosts;
};

/// Result of an IRC run.
struct IrcResult {
  /// Color per vertex; -1 for spilled vertices.
  Coloring Colors;
  /// Vertices that could not be colored (actual spills).
  std::vector<unsigned> Spilled;
  /// The coalescing performed (merged move-related vertices share classes).
  CoalescingSolution Solution;
  CoalescingStats Stats;
  /// Moves discarded because their endpoints interfere (constrained).
  unsigned ConstrainedMoves = 0;
  /// Moves frozen (kept as real moves to allow simplification).
  unsigned FrozenMoves = 0;
};

/// Runs iterated register coalescing on \p P with \p P.K registers. When
/// \p Telemetry is non-null, merge attempts and Briggs/George test
/// run/outcome counters accumulate into it.
IrcResult iteratedRegisterCoalescing(const CoalescingProblem &P,
                                     const IrcOptions &Options = {},
                                     CoalescingTelemetry *Telemetry = nullptr);

} // namespace rc

#endif // COALESCING_ITERATEDREGISTERCOALESCING_H
