//===- coalescing/ExactChordalDP.cpp - Thm 5 clique-tree DP ---------------===//

#include "coalescing/ExactChordalDP.h"

#include "graph/Chordal.h"
#include "graph/CliqueTree.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

using namespace rc;

namespace {

/// Swaps colors \p A and \p B on every vertex reachable from \p Start;
/// swapping within a union of connected components keeps a coloring valid.
void swapColorsInComponent(const Graph &G, Coloring &C, unsigned Start,
                           int A, int B) {
  std::vector<bool> Seen(G.numVertices(), false);
  std::vector<unsigned> Stack{Start};
  Seen[Start] = true;
  while (!Stack.empty()) {
    unsigned V = Stack.back();
    Stack.pop_back();
    if (C[V] == A)
      C[V] = B;
    else if (C[V] == B)
      C[V] = A;
    for (unsigned W : G.neighbors(V))
      if (!Seen[W]) {
        Seen[W] = true;
        Stack.push_back(W);
      }
  }
}

/// Builds a witness coloring for a chain that may thread through slack
/// cliques. Merging only the real chain vertices can leave their subtree
/// union disconnected (the quotient need not be chordal!), so the chain is
/// completed on an AUGMENTED graph first: one artificial vertex per used
/// slack clique, adjacent to exactly that clique — simplicial, so the
/// augmented graph is chordal, and the clique stays below K, so its clique
/// number still is. The augmented chain tiles the path, its quotient is
/// chordal with unchanged clique number, and restricting the quotient's
/// optimal coloring to the original vertices yields the witness.
Coloring chainWitness(const Graph &G, const std::vector<unsigned> &Chain,
                      const std::vector<std::vector<unsigned>> &SlackCliques,
                      unsigned K) {
  unsigned N = G.numVertices();
  unsigned NAug = N + static_cast<unsigned>(SlackCliques.size());
  Graph Aug(NAug);
  for (unsigned V = 0; V < N; ++V)
    for (unsigned W : G.neighbors(V))
      if (V < W)
        Aug.addEdge(V, W);
  for (unsigned S = 0; S < SlackCliques.size(); ++S)
    for (unsigned W : SlackCliques[S])
      Aug.addEdge(N + S, W);

  std::vector<bool> InChain(NAug, false);
  for (unsigned V : Chain)
    InChain[V] = true;
  for (unsigned S = 0; S < SlackCliques.size(); ++S)
    InChain[N + S] = true;
  std::vector<unsigned> ClassIds(NAug);
  unsigned NextId = 1;
  for (unsigned V = 0; V < NAug; ++V)
    ClassIds[V] = InChain[V] ? 0 : NextId++;
  Graph Quotient = Aug.quotient(ClassIds, NextId);
  Coloring QuotientColors = chordalOptimalColoring(Quotient);
  assert(numColorsUsed(QuotientColors) <= K &&
         "tiling chain raised the clique number");
  (void)K;
  Coloring Witness(N);
  for (unsigned V = 0; V < N; ++V)
    Witness[V] = QuotientColors[ClassIds[V]];
  return Witness;
}

} // namespace

ChordalDPResult rc::chordalIncrementalDP(const Graph &G, unsigned X,
                                         unsigned Y, unsigned K) {
  assert(X < G.numVertices() && Y < G.numVertices() && X != Y &&
         "bad affinity endpoints");
  ChordalDPResult Result;
  if (G.hasEdge(X, Y))
    return Result;

  unsigned Omega = chordalCliqueNumber(G); // Asserts chordality.
  if (K < Omega)
    return Result;

  CliqueTree T = CliqueTree::build(G);
  std::vector<unsigned> Path =
      T.pathBetweenSubtrees(T.nodesContaining(X), T.nodesContaining(Y));

  if (Path.empty()) {
    // Different components: any optimal coloring, colors permuted on y's
    // side, identifies the endpoints with no merging at all.
    Coloring C = chordalOptimalColoring(G);
    if (C[X] != C[Y])
      swapColorsInComponent(G, C, Y, C[X], C[Y]);
    Result.Feasible = true;
    Result.GapFree = true;
    Result.Witness = std::move(C);
    Result.MergedChain = {X, Y};
    assert(Result.Witness[X] == Result.Witness[Y] &&
           isValidColoring(G, Result.Witness, static_cast<int>(K)) &&
           "cross-component witness is invalid");
    return Result;
  }

  unsigned Q = static_cast<unsigned>(Path.size());
  assert(Q >= 2 && "adjacent subtrees imply an interference");
  std::vector<int> Pos(T.numNodes(), -1);
  for (unsigned I = 0; I < Q; ++I)
    Pos[Path[I]] = static_cast<int>(I);

  // Intervals: subtree-path intersections (contiguous) for every vertex
  // touching the path, then one slack interval per position whose clique
  // has a free color slot.
  struct Interval {
    unsigned Lo = 0, Hi = 0;
    unsigned Vertex = ~0u; // ~0u marks a slack interval.
  };
  std::vector<Interval> Intervals;
  unsigned XInterval = ~0u, YInterval = ~0u;
  for (unsigned V = 0; V < G.numVertices(); ++V) {
    unsigned Lo = ~0u, Hi = 0, Count = 0;
    for (unsigned Node : T.nodesContaining(V)) {
      if (Pos[Node] < 0)
        continue;
      unsigned P = static_cast<unsigned>(Pos[Node]);
      Lo = std::min(Lo, P);
      Hi = std::max(Hi, P);
      ++Count;
    }
    if (Count == 0)
      continue;
    assert(Count == Hi - Lo + 1 && "subtree-path intersection has a gap");
    if (V == X)
      XInterval = static_cast<unsigned>(Intervals.size());
    if (V == Y)
      YInterval = static_cast<unsigned>(Intervals.size());
    Intervals.push_back({Lo, Hi, V});
  }
  assert(XInterval != ~0u && YInterval != ~0u && "endpoints missed the path");
  assert(Intervals[XInterval].Lo == 0 && Intervals[XInterval].Hi == 0 &&
         "x's interval must be the first path node only");
  assert(Intervals[YInterval].Lo == Q - 1 &&
         Intervals[YInterval].Hi == Q - 1 &&
         "y's interval must be the last path node only");
  for (unsigned P = 0; P < Q; ++P)
    if (T.clique(Path[P]).size() < K)
      Intervals.push_back({P, P, ~0u});

  // DP left to right over path positions, minimizing the lexicographic
  // cost (slack intervals used, real vertices merged): a gap-free chain —
  // whose merge provably keeps the quotient chordal — always beats one
  // that threads through free color slots, and among gap-free chains the
  // fewest artificial merges win. Cost packs as slack<<32 | real.
  // BestCost[p] covers exactly [0..p] starting with I_x; BestEnd[p] is the
  // interval ending that chain (ties: first in construction order, so the
  // result is deterministic). Every interval ending at p-1 is processed
  // before position p is read, because Lo <= Hi.
  constexpr uint64_t Inf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> BestCost(Q, Inf);
  std::vector<int> BestEnd(Q, -1);
  std::vector<std::vector<unsigned>> ByLo(Q);
  for (unsigned I = 0; I < Intervals.size(); ++I)
    ByLo[Intervals[I].Lo].push_back(I);

  for (unsigned P = 0; P < Q; ++P) {
    for (unsigned I : ByLo[P]) {
      uint64_t Base;
      if (P == 0)
        Base = I == XInterval ? 0 : Inf; // The chain must start with I_x.
      else
        Base = BestCost[P - 1];
      if (Base == Inf)
        continue;
      uint64_t Cost =
          Base + (Intervals[I].Vertex != ~0u ? 1 : uint64_t(1) << 32);
      unsigned Hi = Intervals[I].Hi;
      if (Cost < BestCost[Hi]) {
        BestCost[Hi] = Cost;
        BestEnd[Hi] = static_cast<int>(I);
      }
    }
  }

  // The chain must end with I_y (y's class contains y, and intervals in a
  // chain are disjoint), so the answer hangs off position Q-2.
  if (BestCost[Q - 2] == Inf)
    return Result;

  std::vector<unsigned> Chain{Y};
  std::vector<std::vector<unsigned>> SlackCliques;
  unsigned RealMerges = 0;
  for (int P = static_cast<int>(Q) - 2; P >= 0;) {
    const Interval &I = Intervals[static_cast<unsigned>(BestEnd[P])];
    if (I.Vertex != ~0u) {
      Chain.push_back(I.Vertex);
      if (I.Vertex != X && I.Vertex != Y)
        ++RealMerges;
    } else {
      const auto &Clique = T.clique(Path[I.Lo]);
      SlackCliques.emplace_back(Clique.begin(), Clique.end());
    }
    P = static_cast<int>(I.Lo) - 1;
  }
  std::reverse(Chain.begin(), Chain.end());
  assert(Chain.front() == X && Chain.back() == Y &&
         "DP chain must run from x to y");
  assert(RealMerges + 2 == Chain.size() && "chain cost mismatch");
  assert(SlackCliques.size() == (BestCost[Q - 2] >> 32) &&
         "slack cost mismatch");

  Result.Feasible = true;
  Result.GapFree = SlackCliques.empty();
  Result.MergedChain = std::move(Chain);
  Result.RealMerges = RealMerges;
  Result.Witness = chainWitness(G, Result.MergedChain, SlackCliques, K);
  assert(isValidColoring(G, Result.Witness, static_cast<int>(K)) &&
         Result.Witness[X] == Result.Witness[Y] && "DP witness is invalid");
  return Result;
}

ChordalDPStrategyResult rc::chordalCoalesceDP(const CoalescingProblem &P,
                                              CoalescingTelemetry *Telemetry,
                                              const CancelToken *Cancel) {
  auto Count = [Telemetry](EngineEvent E) {
    if (Telemetry)
      Telemetry->count(E);
  };
  assert(isChordal(P.G) && "DP strategy requires a chordal graph");
  assert(P.K >= chordalCliqueNumber(P.G) &&
         "DP strategy requires k >= omega");

  unsigned N = P.G.numVertices();
  UnionFind Classes(N);
  Graph Current = P.G;
  std::vector<unsigned> DenseIds(N);
  std::iota(DenseIds.begin(), DenseIds.end(), 0u);

  // Applies the tentative partition when its quotient stays chordal —
  // guaranteed for gap-free chains (asserted), merely possible for chains
  // that threaded a slack slot. Returns false, leaving the state intact,
  // when the merge would break the chordality later decisions rely on.
  auto tryCommit = [&](UnionFind &&Tentative, bool GapFree) {
    std::vector<unsigned> Dense = Tentative.denseClassIds();
    Graph Quotient = P.G.quotient(Dense, Tentative.numClasses());
    bool Chordal = isChordal(Quotient);
    assert((Chordal || !GapFree) &&
           "gap-free chain merge broke chordality, contradicting Theorem 5");
    (void)GapFree;
    if (!Chordal)
      return false;
    Classes = std::move(Tentative);
    DenseIds = std::move(Dense);
    Current = std::move(Quotient);
    return true;
  };

  std::vector<unsigned> Order(P.Affinities.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&P](unsigned A, unsigned B) {
    return P.Affinities[A].Weight > P.Affinities[B].Weight;
  });

  ChordalDPStrategyResult Result;
  for (unsigned Idx : Order) {
    // pollNow, not expired(): nothing else polls this token here, so a
    // deadline-armed token would otherwise never trip. Once per affinity
    // decision, the clock read is noise.
    if (Cancel && Cancel->pollNow()) {
      Result.TimedOut = true;
      break;
    }
    const Affinity &A = P.Affinities[Idx];
    unsigned X = DenseIds[A.U], Y = DenseIds[A.V];
    if (X == Y)
      continue;
    Count(EngineEvent::MergeAttempted);
    if (Current.hasEdge(X, Y)) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    ChordalDPResult Decision = chordalIncrementalDP(Current, X, Y, P.K);
    if (!Decision.Feasible) {
      ++Result.InfeasibleAffinities;
      continue;
    }
    assert(Decision.MergedChain.size() >= 2 && "chain must contain x and y");
    std::vector<unsigned> Reps;
    for (unsigned Vertex = 0; Vertex < N; ++Vertex)
      if (std::find(Decision.MergedChain.begin(),
                    Decision.MergedChain.end(),
                    DenseIds[Vertex]) != Decision.MergedChain.end())
        Reps.push_back(Vertex);
    UnionFind Tentative = Classes;
    for (size_t I = 1; I < Reps.size(); ++I)
      Tentative.merge(Reps[0], Reps[I]);
    if (!tryCommit(std::move(Tentative), Decision.GapFree)) {
      // The minimum-cost chain threads through a free color slot and
      // merging its real vertices would break chordality, invalidating
      // every later exact decision. Leave the affinity uncoalesced.
      ++Result.DeferredGapped;
      continue;
    }
    Result.ChainMerges += Decision.RealMerges;
    for (size_t I = 1; I < Reps.size(); ++I)
      Count(EngineEvent::MergeCommitted);
  }

  Result.Solution.ClassIds = Classes.denseClassIds();
  Result.Solution.NumClasses = Classes.numClasses();
  Result.Stats = evaluateSolution(P, Result.Solution);
  assert(isValidCoalescing(P.G, Result.Solution) &&
         "DP strategy produced an invalid coalescing");
  return Result;
}
