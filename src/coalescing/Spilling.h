//===- coalescing/Spilling.h - Chaitin-style spilling -----------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph-level spilling: remove (spill) vertices until the remaining graph
/// is greedy-k-colorable, Chaitin's fallback when the elimination gets
/// stuck. This substrate lets benchmarks and examples drive the two-phase
/// "first spill so that Maxlive <= k, then color/coalesce" flow the paper's
/// introduction attributes to Appel–George and the SSA-based allocators.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_SPILLING_H
#define COALESCING_SPILLING_H

#include "graph/Graph.h"

#include <vector>

namespace rc {

/// Result of graph-level spilling.
struct SpillResult {
  /// Spilled vertex ids (in the original graph's numbering).
  std::vector<unsigned> Spilled;
  /// The surviving vertices (complement of Spilled), sorted.
  std::vector<unsigned> Kept;
  /// The induced subgraph on Kept; greedy-k-colorable by construction.
  Graph Remaining;
  /// Maps original vertex id to id in Remaining (~0u when spilled).
  std::vector<unsigned> OldToNew;
};

/// Repeatedly removes a highest-degree vertex from the stuck core of the
/// greedy elimination until the remaining graph is greedy-k-colorable.
///
/// \param SpillCosts optional per-vertex costs: among stuck vertices, the
///        one minimizing cost/degree is spilled (Chaitin's heuristic);
///        uniform costs when empty.
SpillResult spillToGreedyK(const Graph &G, unsigned K,
                           const std::vector<double> &SpillCosts = {});

} // namespace rc

#endif // COALESCING_SPILLING_H
