//===- coalescing/BiasedColoring.h - Biased select --------------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Biased coloring (mentioned in Section 1 as one of the "smarter coloring
/// schemes favoring more coalescing"): color the graph greedily in reverse
/// elimination order, but when choosing among the available colors prefer a
/// color already given to an affinity-related vertex. No vertices are
/// merged, yet a move whose endpoints receive the same color disappears just
/// the same.
///
/// The result is expressed as a CoalescingSolution whose classes are the
/// color classes: that is a valid coalescing (color classes are independent
/// sets) whose quotient is a k-clique, hence trivially greedy-k-colorable.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_BIASEDCOLORING_H
#define COALESCING_BIASEDCOLORING_H

#include "coalescing/Problem.h"
#include "graph/Coloring.h"

namespace rc {

/// Result of biased coloring.
struct BiasedColoringResult {
  /// The biased k-coloring.
  Coloring Colors;
  /// Color classes as a coalescing solution (see file comment).
  CoalescingSolution Solution;
  CoalescingStats Stats;
};

/// Colors the greedy-k-colorable graph \p P.G with at most \p P.K colors,
/// biasing each choice toward the colors of already-colored affinity
/// neighbors (weighted by affinity weight). Asserts greedy-k-colorability.
BiasedColoringResult biasedColoring(const CoalescingProblem &P);

} // namespace rc

#endif // COALESCING_BIASEDCOLORING_H
