//===- coalescing/ExactSearch.h - Exact B&B coalescing search ---*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact branch-and-bound coalescing solver behind the optimality-gap
/// dashboard (tools/rc_gap). It maximizes coalesced affinity weight over the
/// partitions induced by affinity subsets, under a selectable feasibility
/// regime:
///
///  - Greedy:     the quotient must stay greedy-k-colorable — the exact
///                version of the conservative/optimistic objective (the
///                aggressive-then-optimal-de-coalescing problem of
///                Theorem 6).
///  - ExactColor: the quotient must be k-colorable (checked by exact
///                search); the right bound for strategies whose chain
///                merges leave the affinity-subset space (Theorem 5
///                chains).
///  - Any:        no colorability constraint — the exact aggressive
///                optimum (Theorem 2's objective). Because the coalesced
///                affinity set of ANY valid partition is realized by the
///                refinement that merges only those affinities' endpoint
///                components, this optimum upper-bounds every strategy's
///                coalesced weight, chain merges included: a strategy
///                exceeding it has merged interfering vertices.
///
/// Unlike the recursive conservativeCoalesceExact (kept as the reference
/// implementation), this solver follows the explicit undo-stack search
/// idiom (SNIPPETS.md, rakdver/coloring-book): an iterative decision stack
/// over WorkGraph checkpoints, processing affinities in decreasing weight
/// order, with two admissible bounds — a free suffix-weight bound and a
/// per-node still-mergeable scan — plus the engine's cached safety tests:
/// while every merge on the current branch passed the (cached, popcount)
/// Briggs test the quotient is known greedy-k-colorable, so leaf
/// colorability checks are skipped outright.
///
/// Deterministic: identical inputs and node limits produce identical
/// results at any thread count or wall-clock speed. A CancelToken expiry
/// unwinds every live checkpoint before returning, so the engine lands
/// back in its consistent pre-search state (TimedOut partial results are
/// sound).
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_EXACTSEARCH_H
#define COALESCING_EXACTSEARCH_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"
#include "support/CancelToken.h"

#include <cstdint>

namespace rc {

/// Which leaf feasibility test the exact search enforces.
enum class ExactFeasibility {
  /// No colorability requirement: the exact aggressive optimum.
  Any,
  /// Quotient greedy-k-colorable: the conservative/optimistic optimum.
  Greedy,
  /// Quotient k-colorable by exact search (slow; tiny instances only).
  ExactColor,
};

/// Short stable name of \p F ("any", "greedy", "kcolor").
const char *exactFeasibilityName(ExactFeasibility F);

/// Knobs for one exactCoalesceSearch call.
struct ExactSearchOptions {
  ExactFeasibility Feasibility = ExactFeasibility::Greedy;
  /// Search-node budget; the search stops (deterministically) when
  /// exceeded and reports Optimal = false.
  uint64_t NodeLimit = UINT64_MAX;
};

/// Result of an exact branch-and-bound search.
struct ExactSearchResult {
  /// The best feasible partition found (identity when none was).
  CoalescingSolution Solution;
  CoalescingStats Stats;
  /// Coalesced weight of the decisions along the best branch; Stats holds
  /// the full evaluation of Solution (equal when Optimal).
  double BestWeight = 0;
  /// True when the search ran to completion: BestWeight is the optimum.
  bool Optimal = false;
  /// True when an expired CancelToken abandoned the search; the solution
  /// is the best feasible one found so far.
  bool TimedOut = false;
  uint64_t NodesExplored = 0;
  /// Subtrees cut by the admissible bounds.
  uint64_t BoundPrunes = 0;
  /// Leaf colorability checks skipped because every merge on the branch
  /// passed the cached Briggs test (Greedy feasibility only).
  uint64_t CachedTestLeafSkips = 0;
};

/// Runs the undo-stack branch-and-bound search on \p P. When \p Telemetry
/// is non-null the engine's event counters accumulate into it. When
/// \p Cancel is non-null the search stops at the next node boundary after
/// the token expires, unwinding all speculative merges before returning.
ExactSearchResult exactCoalesceSearch(const CoalescingProblem &P,
                                      const ExactSearchOptions &Options = {},
                                      CoalescingTelemetry *Telemetry =
                                          nullptr,
                                      const CancelToken *Cancel = nullptr);

} // namespace rc

#endif // COALESCING_EXACTSEARCH_H
