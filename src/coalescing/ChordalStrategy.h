//===- coalescing/ChordalStrategy.h - Theorem 5 as a coalescer --*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coalescing strategy the paper proposes after Theorem 5 ("we could
/// design an incremental conservative coalescing strategy for chordal
/// graphs"): process affinities by decreasing weight; for each, decide
/// optimally (in polynomial time) whether the current chordal graph admits
/// a k-coloring identifying the two endpoints, and if so merge the whole
/// interval chain produced by the decision procedure. Because the chain's
/// subtrees tile the clique-tree path disjointly, the quotient is again
/// chordal with an unchanged clique number, so the procedure can iterate.
///
/// As the paper notes, the artificial chain merges "may prevent coalescing
/// more important affinities afterwards" -- the strategy is per-affinity
/// optimal, not globally optimal (that problem is NP-complete, Theorem 3).
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_CHORDALSTRATEGY_H
#define COALESCING_CHORDALSTRATEGY_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"

namespace rc {

/// Result of the chordal Theorem 5 strategy.
struct ChordalStrategyResult {
  CoalescingSolution Solution;
  CoalescingStats Stats;
  /// Affinities whose optimal incremental decision was "impossible".
  unsigned InfeasibleAffinities = 0;
  /// Extra (non-affinity) vertices merged through chain merges.
  unsigned ChainMerges = 0;
  /// Affinities that were incrementally feasible, but only through a slack
  /// (gapped) chain whose merge was checked to break chordality; they are
  /// left uncoalesced rather than destroying the invariant every later
  /// decision relies on. (Gapped chains whose quotient happens to stay
  /// chordal are still committed.)
  unsigned DeferredGapped = 0;
};

/// Runs the Theorem 5 strategy on \p P. Requires \p P.G chordal and
/// \p P.K >= omega(P.G) (asserted). When \p Telemetry is non-null, merge
/// attempt/commit counters accumulate into it.
ChordalStrategyResult chordalCoalesce(const CoalescingProblem &P,
                                      CoalescingTelemetry *Telemetry =
                                          nullptr);

} // namespace rc

#endif // COALESCING_CHORDALSTRATEGY_H
