//===- coalescing/Problem.cpp - Coalescing problem types ------------------===//

#include "coalescing/Problem.h"

using namespace rc;

bool rc::isValidCoalescing(const Graph &G, const CoalescingSolution &S) {
  if (S.ClassIds.size() != G.numVertices())
    return false;
  for (unsigned V = 0; V < G.numVertices(); ++V)
    if (S.ClassIds[V] >= S.NumClasses)
      return false;
  for (unsigned U = 0; U < G.numVertices(); ++U)
    for (unsigned V : G.neighbors(U))
      if (V > U && S.ClassIds[U] == S.ClassIds[V])
        return false;
  return true;
}

CoalescingStats rc::evaluateSolution(const CoalescingProblem &P,
                                     const CoalescingSolution &S) {
  CoalescingStats Stats;
  for (const Affinity &A : P.Affinities) {
    if (S.merged(A.U, A.V)) {
      ++Stats.CoalescedAffinities;
      Stats.CoalescedWeight += A.Weight;
    } else {
      ++Stats.UncoalescedAffinities;
      Stats.UncoalescedWeight += A.Weight;
    }
  }
  return Stats;
}

Graph rc::buildCoalescedGraph(const Graph &G, const CoalescingSolution &S) {
  assert(isValidCoalescing(G, S) && "invalid coalescing");
  bool SelfLoop = false;
  Graph Quotient = G.quotient(S.ClassIds, S.NumClasses, &SelfLoop);
  assert(!SelfLoop && "valid coalescing produced a self loop");
  return Quotient;
}

CoalescingSolution rc::identitySolution(const Graph &G) {
  CoalescingSolution S;
  S.NumClasses = G.numVertices();
  S.ClassIds.resize(G.numVertices());
  for (unsigned V = 0; V < G.numVertices(); ++V)
    S.ClassIds[V] = V;
  return S;
}

double rc::totalAffinityWeight(const CoalescingProblem &P) {
  double Total = 0;
  for (const Affinity &A : P.Affinities)
    Total += A.Weight;
  return Total;
}
