//===- coalescing/Aggressive.h - Aggressive coalescing ----------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggressive coalescing (Section 3 of the paper): remove as many moves as
/// possible with no constraint on the number of registers; only
/// interferences can prevent coalescing. NP-complete by reduction from
/// multiway cut (Theorem 2), so the module offers a weight-greedy heuristic
/// and an exact branch-and-bound for small instances.
///
//===----------------------------------------------------------------------===//

#ifndef COALESCING_AGGRESSIVE_H
#define COALESCING_AGGRESSIVE_H

#include "coalescing/Problem.h"
#include "coalescing/Telemetry.h"

#include <cstdint>

namespace rc {

/// Result of an aggressive coalescing run.
struct AggressiveResult {
  CoalescingSolution Solution;
  CoalescingStats Stats;
  /// Exact solver only: true when the search space was fully explored.
  bool Optimal = false;
  /// Exact solver only: search nodes visited.
  uint64_t NodesExplored = 0;
};

/// Weight-greedy aggressive coalescing: processes affinities in decreasing
/// weight order, merging whenever the two classes do not interfere.
/// Runs in roughly O(A log A + E alpha(V)). When \p Telemetry is non-null
/// the engine's event counters accumulate into it.
AggressiveResult aggressiveCoalesceGreedy(const CoalescingProblem &P,
                                          CoalescingTelemetry *Telemetry =
                                              nullptr);

/// Exact aggressive coalescing by branch and bound over the affinity list:
/// maximizes the coalesced weight. Exponential; intended for instances with
/// at most a few dozen affinities (reduction verification).
///
/// \param NodeLimit aborts the search once exceeded (Optimal stays false).
AggressiveResult aggressiveCoalesceExact(const CoalescingProblem &P,
                                         uint64_t NodeLimit = UINT64_MAX);

} // namespace rc

#endif // COALESCING_AGGRESSIVE_H
