//===- service/SocketTransport.h - POSIX socket plumbing --------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The portable POSIX layer under the networked service: endpoint parsing,
/// listen/accept/connect wrappers, and streambuf adapters that turn an
/// accepted fd into the istream/ostream pair the frame loop already
/// speaks. Everything above this header (Listener, Client, ServiceLoop)
/// is socket-agnostic; everything below it is read(2)/send(2).
///
/// Endpoint grammar (the `--listen` / `--connect` flag values):
///
///   tcp:PORT     loopback TCP on 127.0.0.1:PORT (PORT 0 = OS-assigned,
///                recovered via boundEndpoint — how tests avoid races)
///   unix:PATH    a Unix-domain stream socket at PATH
///
/// SocketStream deliberately wraps one fd in two independent streambufs
/// (FdInBuf / FdOutBuf) instead of a single bidirectional one: the frame
/// loop reads and writes from different threads, and separate buffers +
/// separate istream/ostream objects mean neither direction shares mutable
/// state — the only contention left is the kernel's, which is exactly
/// what sockets promise to handle. Writes use send(MSG_NOSIGNAL), so a
/// vanished peer surfaces as a stream error instead of SIGPIPE killing
/// the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_SOCKETTRANSPORT_H
#define SERVICE_SOCKETTRANSPORT_H

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>

namespace rc {

//===----------------------------------------------------------------------===//
// Endpoints
//===----------------------------------------------------------------------===//

enum class EndpointKind {
  Tcp,  ///< Loopback TCP (127.0.0.1).
  Unix, ///< Unix-domain stream socket.
};

struct Endpoint {
  EndpointKind Kind = EndpointKind::Tcp;
  /// TCP port; 0 asks the OS for one (see boundEndpoint).
  uint16_t Port = 0;
  /// Unix socket path.
  std::string Path;
};

/// Parses "tcp:PORT" or "unix:PATH". \returns false with a diagnostic in
/// \p Error otherwise.
bool parseEndpoint(const std::string &Text, Endpoint &E,
                   std::string *Error = nullptr);

/// Renders \p E back into the flag grammar ("tcp:4217", "unix:/tmp/rc.sock").
std::string endpointName(const Endpoint &E);

//===----------------------------------------------------------------------===//
// Socket system-call wrappers
//===----------------------------------------------------------------------===//

/// Creates, binds and listens on \p E. \returns the listening fd, or -1
/// with a diagnostic in \p Error. Unix endpoints refuse an existing path
/// (a live daemon may own it); stale files are the operator's to remove.
int listenOnEndpoint(const Endpoint &E, std::string *Error = nullptr);

/// Recovers the actual bound endpoint of listening fd \p Fd — the
/// OS-assigned port for tcp:0. \returns false on a getsockname failure.
bool boundEndpoint(int Fd, Endpoint &E, std::string *Error = nullptr);

/// Waits up to \p TimeoutMillis for a connection on \p Fd and accepts it.
/// \returns the connection fd, or -1 when the wait timed out (Error left
/// empty) or accept failed (Error filled).
int acceptConnection(int Fd, int TimeoutMillis, std::string *Error = nullptr);

/// Connects to \p E. \returns the connected fd, or -1 with a diagnostic.
int connectToEndpoint(const Endpoint &E, std::string *Error = nullptr);

/// Closes \p Fd, ignoring errors (shutdown paths; -1 is a no-op).
void closeFd(int Fd);

//===----------------------------------------------------------------------===//
// Stream adapters
//===----------------------------------------------------------------------===//

/// Read side of an fd as a streambuf. Blocking; EOF when the peer closes
/// or shuts down its write side.
class FdInBuf final : public std::streambuf {
public:
  explicit FdInBuf(int Fd) : Fd(Fd) {}

protected:
  int_type underflow() override;

private:
  int Fd;
  std::array<char, 8192> Buf;
};

/// Write side of an fd as a streambuf; buffered, flushed on sync(). Write
/// failures (peer gone) surface as overflow/sync errors, which the
/// wrapping ostream turns into badbit — never SIGPIPE.
class FdOutBuf final : public std::streambuf {
public:
  explicit FdOutBuf(int Fd);

protected:
  int_type overflow(int_type Ch) override;
  int sync() override;
  std::streamsize xsputn(const char *S, std::streamsize N) override;

private:
  bool flushBuffer();
  bool writeAll(const char *Data, size_t Len);

  int Fd;
  std::array<char, 8192> Buf;
};

/// One connected socket as the istream/ostream pair runServiceLoop (and
/// the client) speak. Owns the fd: the destructor flushes pending output
/// and closes it.
class SocketStream {
public:
  explicit SocketStream(int Fd);
  ~SocketStream();

  SocketStream(const SocketStream &) = delete;
  SocketStream &operator=(const SocketStream &) = delete;

  std::istream &in() { return In; }
  std::ostream &out() { return Out; }
  int fd() const { return Fd; }

  /// Half-closes the read side: a reader blocked in read(2) on this fd
  /// observes EOF. The listener's drain uses this to nudge idle
  /// connections without racing fd reuse (the fd stays valid until the
  /// owner destroys the stream).
  void shutdownRead();

  /// Flushes buffered output and half-closes the write side, signalling
  /// EOF to the peer's reader while keeping our read side open.
  void shutdownWrite();

private:
  int Fd;
  FdInBuf InBuf;
  FdOutBuf OutBuf;
  std::istream In;
  std::ostream Out;
};

} // namespace rc

#endif // SERVICE_SOCKETTRANSPORT_H
