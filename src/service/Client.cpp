//===- service/Client.cpp - Native service client library -----------------===//

#include "service/Client.h"

#include <utility>

using namespace rc;

const char *rc::clientErrorKindName(ClientErrorKind K) {
  switch (K) {
  case ClientErrorKind::Connect:
    return "connect";
  case ClientErrorKind::Transport:
    return "transport";
  case ClientErrorKind::Protocol:
    return "protocol";
  case ClientErrorKind::BadRequest:
    return "bad-request";
  case ClientErrorKind::UnknownStrategy:
    return "unknown-strategy";
  case ClientErrorKind::BadOption:
    return "bad-option";
  case ClientErrorKind::TimedOut:
    return "timed-out";
  case ClientErrorKind::Busy:
    return "busy";
  case ClientErrorKind::ShuttingDown:
    return "shutting-down";
  }
  return "unknown";
}

namespace {

ClientError makeError(ClientErrorKind Kind, std::string Message) {
  ClientError E;
  E.Kind = Kind;
  E.Message = std::move(Message);
  return E;
}

ClientError notConnected() {
  return makeError(ClientErrorKind::Connect, "client is not connected");
}

/// Maps one daemon reply onto the client result. The payload is kept
/// verbatim on the success path so socket callers see exactly the bytes a
/// stdio pipe would have produced.
Expected<ClientReply> decodeReply(std::string Payload,
                                  bool ExpectShutdownAck) {
  ReplyStatus Status;
  if (!extractResponseStatus(Payload, Status))
    return makeError(ClientErrorKind::Protocol,
                     "response frame carries no recognizable status");

  std::string Message;
  extractResponseString(Payload, "message", Message);

  switch (Status) {
  case ReplyStatus::Ok:
    return ClientReply{Status, std::move(Payload)};
  case ReplyStatus::ShuttingDown:
    // The expected ending of shutdownServer; anywhere else it means the
    // daemon is draining and this request was not served.
    if (ExpectShutdownAck)
      return ClientReply{Status, std::move(Payload)};
    return makeError(ClientErrorKind::ShuttingDown,
                     Message.empty() ? "service is shutting down"
                                     : std::move(Message));
  case ReplyStatus::TimedOut: {
    ClientError E = makeError(ClientErrorKind::TimedOut,
                              Message.empty() ? "deadline expired"
                                              : std::move(Message));
    E.Partial = std::move(Payload);
    return E;
  }
  case ReplyStatus::BadOption: {
    ClientError E = makeError(ClientErrorKind::BadOption, std::move(Message));
    extractResponseString(Payload, "bad_key", E.BadKey);
    extractResponseString(Payload, "bad_value", E.BadValue);
    return E;
  }
  case ReplyStatus::UnknownStrategy:
    return makeError(ClientErrorKind::UnknownStrategy, std::move(Message));
  case ReplyStatus::BadRequest:
    return makeError(ClientErrorKind::BadRequest, std::move(Message));
  case ReplyStatus::Busy:
    return makeError(ClientErrorKind::Busy, std::move(Message));
  }
  return makeError(ClientErrorKind::Protocol, "unhandled reply status");
}

} // namespace

Expected<Client> Client::connect(const Endpoint &E) {
  std::string Error;
  int Fd = connectToEndpoint(E, &Error);
  if (Fd < 0)
    return makeError(ClientErrorKind::Connect, Error);
  Client C;
  C.Stream = std::make_unique<SocketStream>(Fd);
  C.Ep = E;
  return C;
}

ClientError Client::connectionFatal(ClientErrorKind Kind,
                                    std::string Message) {
  close();
  return makeError(Kind, std::move(Message));
}

Expected<ClientReply> Client::readReply(bool ExpectShutdownAck) {
  Frame F;
  std::string Error;
  switch (readFrame(Stream->in(), F, kDefaultMaxPayloadBytes, &Error)) {
  case FrameReadStatus::Ok:
    break;
  case FrameReadStatus::Eof:
    return connectionFatal(ClientErrorKind::Transport,
                           "connection closed before the reply arrived");
  case FrameReadStatus::TooLarge:
  case FrameReadStatus::Malformed:
    return connectionFatal(ClientErrorKind::Protocol, Error);
  }
  if (F.Type != FrameType::Response)
    return connectionFatal(ClientErrorKind::Protocol,
                           std::string("expected a response frame, got ") +
                               frameTypeName(F.Type));
  Expected<ClientReply> R =
      decodeReply(std::move(F.Payload), ExpectShutdownAck);
  if (!R && R.error().Kind == ClientErrorKind::Protocol)
    close();
  return R;
}

Expected<ClientReply> Client::submit(const CoalescingProblem &Problem,
                                     const std::string &Spec,
                                     int64_t DeadlineMillis) {
  std::vector<Request> One(1);
  One[0].Problem = &Problem;
  One[0].Spec = Spec;
  One[0].DeadlineMillis = DeadlineMillis;
  std::vector<Expected<ClientReply>> Replies = submitAll(One);
  return std::move(Replies[0]);
}

std::vector<Expected<ClientReply>>
Client::submitAll(const std::vector<Request> &Requests) {
  std::vector<Expected<ClientReply>> Replies;
  Replies.reserve(Requests.size());
  if (!Stream) {
    for (size_t I = 0; I < Requests.size(); ++I)
      Replies.push_back(notConnected());
    return Replies;
  }

  // Phase one: every frame onto the wire, one flush. The daemon's reply
  // loop preserves request order per connection, so phase two can read
  // the answers positionally.
  for (const Request &R : Requests)
    writeFrame(Stream->out(),
               FrameType::Request,
               buildRequestPayload(*R.Problem, R.Spec, R.DeadlineMillis));
  Stream->out().flush();
  // A write failure does not abort here: a daemon that refuses the
  // connection (busy, shutting down) sends its verdict and closes, so our
  // writes can die with EPIPE while that verdict already sits in the
  // receive buffer. The read phase surfaces the typed verdict; only when
  // nothing is left to read does this degrade to a transport error.
  bool WritesFailed = !Stream->out();

  // Phase two: collect the replies in order. A transport failure fails
  // the remaining entries — their requests may or may not have been
  // served, and the connection is gone either way.
  for (size_t I = 0; I < Requests.size(); ++I) {
    if (!Stream) {
      Replies.push_back(Replies.back().error());
      continue;
    }
    Replies.push_back(readReply(/*ExpectShutdownAck=*/false));
  }
  // Half-dead connections (replies drained, but the write side is gone)
  // are useless for another round trip; retire the stream now.
  if (WritesFailed)
    close();
  return Replies;
}

Expected<ClientReply> Client::shutdownServer(ShutdownMode Mode) {
  if (!Stream)
    return notConnected();
  writeFrame(Stream->out(), FrameType::Shutdown,
             Mode == ShutdownMode::Now ? "now" : "drain");
  Stream->out().flush();
  // As in submitAll: even if the shutdown frame died on the wire, a
  // verdict the daemon sent before closing may still be readable and is
  // more informative than the EPIPE.
  Expected<ClientReply> Ack = readReply(/*ExpectShutdownAck=*/true);
  close();
  return Ack;
}
