//===- service/SocketTransport.cpp - POSIX socket plumbing ----------------===//

#include "service/SocketTransport.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rc;

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

int failFd(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message + ": " + std::strerror(errno);
  return -1;
}

/// Loopback-only: the service has no authentication, so the TCP endpoint
/// deliberately cannot be bound on a routable interface.
sockaddr_in loopbackAddr(uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return Addr;
}

bool unixAddr(const std::string &Path, sockaddr_un &Addr,
              std::string *Error) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return fail(Error, "unix socket path '" + Path + "' exceeds " +
                           std::to_string(sizeof(Addr.sun_path) - 1) +
                           " bytes");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

void setNoDelay(int Fd) {
  int One = 1;
  // Best-effort (fails harmlessly on non-TCP fds): frame replies are
  // small, and Nagle would serialize a pipelining client's round-trips.
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

} // namespace

bool rc::parseEndpoint(const std::string &Text, Endpoint &E,
                       std::string *Error) {
  size_t Colon = Text.find(':');
  std::string Scheme =
      Colon == std::string::npos ? Text : Text.substr(0, Colon);
  std::string Rest = Colon == std::string::npos ? "" : Text.substr(Colon + 1);
  if (Scheme == "tcp") {
    char *End = nullptr;
    long Port = std::strtol(Rest.c_str(), &End, 10);
    if (Rest.empty() || *End != '\0' || Port < 0 || Port > 65535)
      return fail(Error, "'" + Rest + "' is not a TCP port (0-65535)");
    E.Kind = EndpointKind::Tcp;
    E.Port = static_cast<uint16_t>(Port);
    E.Path.clear();
    return true;
  }
  if (Scheme == "unix") {
    if (Rest.empty())
      return fail(Error, "unix endpoint needs a socket path");
    E.Kind = EndpointKind::Unix;
    E.Port = 0;
    E.Path = Rest;
    return true;
  }
  return fail(Error,
              "endpoint '" + Text + "' must be tcp:PORT or unix:PATH");
}

std::string rc::endpointName(const Endpoint &E) {
  if (E.Kind == EndpointKind::Unix)
    return "unix:" + E.Path;
  return "tcp:" + std::to_string(E.Port);
}

int rc::listenOnEndpoint(const Endpoint &E, std::string *Error) {
  int Fd = ::socket(E.Kind == EndpointKind::Unix ? AF_UNIX : AF_INET,
                    SOCK_STREAM, 0);
  if (Fd < 0)
    return failFd(Error, "socket(" + endpointName(E) + ")");

  if (E.Kind == EndpointKind::Tcp) {
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr = loopbackAddr(E.Port);
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      int R = failFd(Error, "bind(" + endpointName(E) + ")");
      closeFd(Fd);
      return R;
    }
  } else {
    sockaddr_un Addr;
    if (!unixAddr(E.Path, Addr, Error)) {
      closeFd(Fd);
      return -1;
    }
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      int R = failFd(Error, "bind(" + endpointName(E) + ")");
      closeFd(Fd);
      return R;
    }
  }

  if (::listen(Fd, 64) != 0) {
    int R = failFd(Error, "listen(" + endpointName(E) + ")");
    closeFd(Fd);
    return R;
  }
  return Fd;
}

bool rc::boundEndpoint(int Fd, Endpoint &E, std::string *Error) {
  sockaddr_storage Storage;
  socklen_t Len = sizeof(Storage);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Storage), &Len) != 0) {
    failFd(Error, "getsockname");
    return false;
  }
  if (Storage.ss_family == AF_INET) {
    const sockaddr_in *Addr = reinterpret_cast<const sockaddr_in *>(&Storage);
    E.Kind = EndpointKind::Tcp;
    E.Port = ntohs(Addr->sin_port);
    E.Path.clear();
    return true;
  }
  if (Storage.ss_family == AF_UNIX) {
    const sockaddr_un *Addr = reinterpret_cast<const sockaddr_un *>(&Storage);
    E.Kind = EndpointKind::Unix;
    E.Port = 0;
    E.Path = Addr->sun_path;
    return true;
  }
  return fail(Error, "unexpected socket family " +
                         std::to_string(Storage.ss_family));
}

int rc::acceptConnection(int Fd, int TimeoutMillis, std::string *Error) {
  if (Error)
    Error->clear();
  pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  int Ready = ::poll(&P, 1, TimeoutMillis);
  if (Ready < 0) {
    if (errno == EINTR)
      return -1; // Signal delivery; the caller re-checks its stop flag.
    return failFd(Error, "poll");
  }
  if (Ready == 0)
    return -1; // Timeout: the caller re-checks its stop flag.
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED)
      return -1;
    return failFd(Error, "accept");
  }
  setNoDelay(Conn);
  return Conn;
}

int rc::connectToEndpoint(const Endpoint &E, std::string *Error) {
  int Fd = ::socket(E.Kind == EndpointKind::Unix ? AF_UNIX : AF_INET,
                    SOCK_STREAM, 0);
  if (Fd < 0)
    return failFd(Error, "socket(" + endpointName(E) + ")");

  int Status;
  if (E.Kind == EndpointKind::Tcp) {
    sockaddr_in Addr = loopbackAddr(E.Port);
    Status = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } else {
    sockaddr_un Addr;
    if (!unixAddr(E.Path, Addr, Error)) {
      closeFd(Fd);
      return -1;
    }
    Status = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  }
  if (Status != 0) {
    int R = failFd(Error, "connect(" + endpointName(E) + ")");
    closeFd(Fd);
    return R;
  }
  setNoDelay(Fd);
  return Fd;
}

void rc::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Stream adapters
//===----------------------------------------------------------------------===//

FdInBuf::int_type FdInBuf::underflow() {
  if (gptr() < egptr())
    return traits_type::to_int_type(*gptr());
  ssize_t N;
  do {
    N = ::read(Fd, Buf.data(), Buf.size());
  } while (N < 0 && errno == EINTR);
  if (N <= 0)
    return traits_type::eof();
  setg(Buf.data(), Buf.data(), Buf.data() + N);
  return traits_type::to_int_type(*gptr());
}

FdOutBuf::FdOutBuf(int Fd) : Fd(Fd) {
  setp(Buf.data(), Buf.data() + Buf.size());
}

bool FdOutBuf::writeAll(const char *Data, size_t Len) {
  while (Len > 0) {
    // MSG_NOSIGNAL: a vanished peer is a stream error, not a SIGPIPE.
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool FdOutBuf::flushBuffer() {
  size_t Pending = static_cast<size_t>(pptr() - pbase());
  if (Pending > 0 && !writeAll(pbase(), Pending))
    return false;
  setp(Buf.data(), Buf.data() + Buf.size());
  return true;
}

FdOutBuf::int_type FdOutBuf::overflow(int_type Ch) {
  if (!flushBuffer())
    return traits_type::eof();
  if (!traits_type::eq_int_type(Ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(Ch);
    pbump(1);
  }
  return traits_type::not_eof(Ch);
}

int FdOutBuf::sync() { return flushBuffer() ? 0 : -1; }

std::streamsize FdOutBuf::xsputn(const char *S, std::streamsize N) {
  // Large payloads skip the staging buffer once it is flushed.
  size_t Len = static_cast<size_t>(N);
  if (Len >= Buf.size()) {
    if (!flushBuffer() || !writeAll(S, Len))
      return 0;
    return N;
  }
  if (static_cast<size_t>(epptr() - pptr()) < Len && !flushBuffer())
    return 0;
  std::memcpy(pptr(), S, Len);
  pbump(static_cast<int>(Len));
  return N;
}

SocketStream::SocketStream(int Fd)
    : Fd(Fd), InBuf(Fd), OutBuf(Fd), In(&InBuf), Out(&OutBuf) {}

SocketStream::~SocketStream() {
  Out.flush();
  closeFd(Fd);
}

void SocketStream::shutdownRead() { ::shutdown(Fd, SHUT_RD); }

void SocketStream::shutdownWrite() {
  Out.flush();
  ::shutdown(Fd, SHUT_WR);
}
