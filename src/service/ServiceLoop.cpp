//===- service/ServiceLoop.cpp - Frame transport loop ---------------------===//

#include "service/ServiceLoop.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

using namespace rc;

namespace {

/// One reply owed to the client, in request order. Either the payload is
/// already known (protocol errors, shutdown acks) or a future will deliver
/// it.
struct PendingReply {
  bool Ready = false;
  std::string Payload;
  std::future<ServiceReply> Future;
};

struct LoopState {
  std::mutex Mutex;
  std::condition_variable Available;
  std::deque<PendingReply> Queue;
  bool ReaderDone = false;
  bool Clean = true;
  std::string Error;

  void pushReady(std::string Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    PendingReply P;
    P.Ready = true;
    P.Payload = std::move(Payload);
    Queue.push_back(std::move(P));
    Available.notify_one();
  }

  void pushFuture(std::future<ServiceReply> Future) {
    std::lock_guard<std::mutex> Lock(Mutex);
    PendingReply P;
    P.Future = std::move(Future);
    Queue.push_back(std::move(P));
    Available.notify_one();
  }

  void finish(bool WasClean, std::string Diagnostic = "") {
    std::lock_guard<std::mutex> Lock(Mutex);
    ReaderDone = true;
    Clean = WasClean;
    Error = std::move(Diagnostic);
    Available.notify_one();
  }
};

std::string badRequestPayload(const std::string &Message,
                              bool IncludeTiming) {
  WireResponse R;
  R.Status = WireStatus::BadRequest;
  R.Message = Message;
  return buildResponsePayload(R, IncludeTiming);
}

void readerMain(std::istream &In, CoalescingService &Service,
                const ServiceLoopOptions &Options, LoopState &State) {
  bool Timing = Service.config().IncludeTiming;
  for (;;) {
    Frame F;
    std::string FrameError;
    FrameReadStatus S =
        readFrame(In, F, Options.MaxPayloadBytes, &FrameError);
    if (S == FrameReadStatus::Eof) {
      // Client hung up without a Shutdown frame: drain silently.
      Service.shutdown(false);
      State.finish(true);
      return;
    }
    if (S == FrameReadStatus::TooLarge) {
      Service.noteBadRequest();
      State.pushReady(badRequestPayload(FrameError, Timing));
      continue;
    }
    if (S == FrameReadStatus::Malformed) {
      // Poisoned stream: nothing after this point can be trusted, so stop
      // reading, cancel in-flight work, and let the writer flush what is
      // already owed.
      Service.shutdown(true);
      State.finish(false, FrameError);
      return;
    }

    switch (F.Type) {
    case FrameType::Request: {
      WireRequest Request;
      std::string ParseError;
      if (!parseRequestPayload(F.Payload, Request, &ParseError)) {
        Service.noteBadRequest();
        State.pushReady(badRequestPayload(ParseError, Timing));
      } else {
        State.pushFuture(Service.submit(std::move(Request)));
      }
      break;
    }
    case FrameType::Response:
      // Responses flow daemon -> client only.
      Service.noteBadRequest();
      State.pushReady(badRequestPayload(
          "unexpected response frame from client", Timing));
      break;
    case FrameType::Shutdown: {
      bool CancelInFlight;
      if (F.Payload.empty() || F.Payload == "drain") {
        CancelInFlight = false;
      } else if (F.Payload == "now") {
        CancelInFlight = true;
      } else {
        Service.noteBadRequest();
        State.pushReady(badRequestPayload(
            "unknown shutdown mode '" + F.Payload + "'", Timing));
        break;
      }
      // In-flight futures are already queued ahead of the ack, so the ack
      // is always the last frame the client sees.
      Service.shutdown(CancelInFlight);
      State.pushReady(buildShutdownAckPayload(Service.stats()));
      State.finish(true);
      return;
    }
    }
  }
}

} // namespace

bool rc::runServiceLoop(std::istream &In, std::ostream &Out,
                        CoalescingService &Service,
                        const ServiceLoopOptions &Options,
                        std::string *Error) {
  LoopState State;
  std::thread Reader(
      [&] { readerMain(In, Service, Options, State); });

  for (;;) {
    PendingReply P;
    {
      std::unique_lock<std::mutex> Lock(State.Mutex);
      State.Available.wait(
          Lock, [&] { return !State.Queue.empty() || State.ReaderDone; });
      if (State.Queue.empty() && State.ReaderDone)
        break;
      P = std::move(State.Queue.front());
      State.Queue.pop_front();
    }
    std::string Payload =
        P.Ready ? std::move(P.Payload) : P.Future.get().Payload;
    writeFrame(Out, FrameType::Response, Payload);
    // Flush per frame so a pipelining client sees answers as they land.
    Out.flush();
  }
  Reader.join();

  if (!State.Clean && Error)
    *Error = State.Error;
  return State.Clean;
}
