//===- service/ServiceLoop.cpp - Frame transport loop ---------------------===//

#include "service/ServiceLoop.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

using namespace rc;

namespace {

/// One reply owed to the client, in request order. Either the payload is
/// already known (protocol errors, shutdown acks) or a future will deliver
/// it.
struct PendingReply {
  bool Ready = false;
  std::string Payload;
  std::future<ServiceReply> Future;
};

struct LoopState {
  std::mutex Mutex;
  std::condition_variable Available;
  std::deque<PendingReply> Queue;
  bool ReaderDone = false;
  bool Clean = true;
  std::string Error;

  /// The connection's session token: every request submitted through this
  /// loop chains its deadline under it, so poisoning the connection can
  /// unwind exactly this connection's in-flight work.
  CancelToken Session;

  void pushReady(std::string Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    PendingReply P;
    P.Ready = true;
    P.Payload = std::move(Payload);
    Queue.push_back(std::move(P));
    Available.notify_one();
  }

  void pushFuture(std::future<ServiceReply> Future) {
    std::lock_guard<std::mutex> Lock(Mutex);
    PendingReply P;
    P.Future = std::move(Future);
    Queue.push_back(std::move(P));
    Available.notify_one();
  }

  void finish(bool WasClean, std::string Diagnostic = "") {
    std::lock_guard<std::mutex> Lock(Mutex);
    ReaderDone = true;
    if (!WasClean) {
      Clean = false;
      // Guarantee the caller a diagnostic even if a new poisoned path
      // forgets to phrase one.
      Error = Diagnostic.empty() ? "stream poisoned by a malformed frame"
                                 : std::move(Diagnostic);
    }
    Available.notify_one();
  }
};

std::string badRequestPayload(const std::string &Message,
                              bool IncludeTiming) {
  WireResponse R;
  R.Status = ReplyStatus::BadRequest;
  R.Message = Message;
  return buildResponsePayload(R, IncludeTiming);
}

void readerMain(std::istream &In, CoalescingService &Service,
                const ServiceLoopOptions &Options, LoopState &State) {
  bool Timing = Service.config().IncludeTiming;
  for (;;) {
    Frame F;
    std::string FrameError;
    FrameReadStatus S =
        readFrame(In, F, Options.MaxPayloadBytes, &FrameError);
    if (S == FrameReadStatus::Eof) {
      // Client hung up without a Shutdown frame: this connection is done.
      // Only the stdio daemon treats that as "the last client left".
      if (Options.OwnsService)
        Service.shutdown(false);
      State.finish(true);
      return;
    }
    if (S == FrameReadStatus::TooLarge) {
      Service.noteBadRequest();
      State.pushReady(badRequestPayload(FrameError, Timing));
      continue;
    }
    if (S == FrameReadStatus::Malformed) {
      // Poisoned stream: nothing after this point can be trusted, so stop
      // reading, cancel in-flight work, and let the writer flush what is
      // already owed. A shared service only loses this connection's work:
      // the session token reaches exactly the requests submitted here.
      if (Options.OwnsService)
        Service.shutdown(true);
      else
        State.Session.cancel();
      State.finish(false, FrameError);
      return;
    }

    switch (F.Type) {
    case FrameType::Request: {
      WireRequest Request;
      std::string ParseError;
      if (!parseRequestPayload(F.Payload, Request, &ParseError)) {
        Service.noteBadRequest();
        State.pushReady(badRequestPayload(ParseError, Timing));
      } else {
        State.pushFuture(
            Service.submit(std::move(Request), &State.Session));
      }
      break;
    }
    case FrameType::Response:
      // Responses flow daemon -> client only.
      Service.noteBadRequest();
      State.pushReady(badRequestPayload(
          "unexpected response frame from client", Timing));
      break;
    case FrameType::Shutdown: {
      bool CancelInFlight;
      if (F.Payload.empty() || F.Payload == "drain") {
        CancelInFlight = false;
      } else if (F.Payload == "now") {
        CancelInFlight = true;
      } else {
        Service.noteBadRequest();
        State.pushReady(badRequestPayload(
            "unknown shutdown mode '" + F.Payload + "'", Timing));
        break;
      }
      // Let the transport stop accepting siblings before the drain, so
      // the ack's stats are final and the drain cannot race new
      // connections.
      if (Options.OnShutdownRequest)
        Options.OnShutdownRequest(CancelInFlight);
      // In-flight futures are already queued ahead of the ack, so the ack
      // is always the last frame the client sees.
      Service.shutdown(CancelInFlight);
      State.pushReady(buildShutdownAckPayload(Service.stats()));
      State.finish(true);
      return;
    }
    }
  }
}

} // namespace

bool rc::runServiceLoop(std::istream &In, std::ostream &Out,
                        CoalescingService &Service,
                        const ServiceLoopOptions &Options,
                        std::string *Error) {
  LoopState State;
  State.Session.setParent(&Service.shutdownToken());
  std::thread Reader(
      [&] { readerMain(In, Service, Options, State); });

  bool WriteFailed = false;
  for (;;) {
    PendingReply P;
    {
      std::unique_lock<std::mutex> Lock(State.Mutex);
      State.Available.wait(
          Lock, [&] { return !State.Queue.empty() || State.ReaderDone; });
      if (State.Queue.empty() && State.ReaderDone)
        break;
      P = std::move(State.Queue.front());
      State.Queue.pop_front();
    }
    std::string Payload =
        P.Ready ? std::move(P.Payload) : P.Future.get().Payload;
    if (WriteFailed)
      continue; // Keep settling futures; the client cannot hear us.
    writeFrame(Out, FrameType::Response, Payload);
    // Flush per frame so a pipelining client sees answers as they land.
    Out.flush();
    if (!Out) {
      // The client stopped reading (closed socket, broken pipe). Responses
      // owed from here on are undeliverable; cancel this connection's
      // remaining work so it unwinds instead of computing into the void.
      WriteFailed = true;
      State.Session.cancel();
    }
  }
  Reader.join();

  if (WriteFailed && State.Clean) {
    State.Clean = false;
    State.Error = "response stream stopped accepting bytes"
                  " (client hung up mid-reply)";
  }
  if (!State.Clean && Error)
    *Error = State.Error;
  return State.Clean;
}
