//===- service/WireProtocol.cpp - Service wire schema ---------------------===//

#include "service/WireProtocol.h"

#include "challenge/ChallengeFormat.h"
#include "support/JsonWriter.h"

#include <cassert>
#include <cstdlib>
#include <sstream>

using namespace rc;

static const char kMagic[4] = {'R', 'C', 'S', 'P'};

const char *rc::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Request:
    return "request";
  case FrameType::Response:
    return "response";
  case FrameType::Shutdown:
    return "shutdown";
  }
  return "?";
}

void rc::writeFrame(std::ostream &OS, FrameType Type,
                    const std::string &Payload) {
  assert(Payload.size() <= 0xffffffffu && "payload exceeds the length field");
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Header[10];
  Header[0] = kMagic[0];
  Header[1] = kMagic[1];
  Header[2] = kMagic[2];
  Header[3] = kMagic[3];
  Header[4] = static_cast<char>(kWireVersion);
  Header[5] = static_cast<char>(Type);
  Header[6] = static_cast<char>((Len >> 24) & 0xff);
  Header[7] = static_cast<char>((Len >> 16) & 0xff);
  Header[8] = static_cast<char>((Len >> 8) & 0xff);
  Header[9] = static_cast<char>(Len & 0xff);
  OS.write(Header, sizeof(Header));
  OS.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
}

FrameReadStatus rc::readFrame(std::istream &IS, Frame &F,
                              uint32_t MaxPayloadBytes, std::string *Error) {
  auto fail = [Error](const std::string &Message) {
    if (Error)
      *Error = Message;
    return FrameReadStatus::Malformed;
  };

  char Header[10];
  IS.read(Header, 1);
  if (IS.gcount() == 0)
    return FrameReadStatus::Eof; // Clean end between frames.
  IS.read(Header + 1, sizeof(Header) - 1);
  if (IS.gcount() != sizeof(Header) - 1)
    return fail("truncated frame header");
  for (unsigned I = 0; I < 4; ++I)
    if (Header[I] != kMagic[I])
      return fail("bad frame magic (expected RCSP)");
  if (static_cast<uint8_t>(Header[4]) != kWireVersion)
    return fail("unsupported protocol version " +
                std::to_string(static_cast<unsigned>(
                    static_cast<uint8_t>(Header[4]))) +
                " (this daemon speaks " + std::to_string(kWireVersion) + ")");
  uint8_t RawType = static_cast<uint8_t>(Header[5]);
  if (RawType < static_cast<uint8_t>(FrameType::Request) ||
      RawType > static_cast<uint8_t>(FrameType::Shutdown))
    return fail("unknown frame type " + std::to_string(RawType));
  F.Type = static_cast<FrameType>(RawType);

  uint32_t Len = (static_cast<uint32_t>(static_cast<uint8_t>(Header[6])) << 24) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[7])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[8])) << 8) |
                 static_cast<uint32_t>(static_cast<uint8_t>(Header[9]));
  if (Len > MaxPayloadBytes) {
    // Trust the header, discard the payload, keep the stream framed.
    char Sink[4096];
    uint32_t Left = Len;
    while (Left > 0) {
      std::streamsize Chunk = static_cast<std::streamsize>(
          Left < sizeof(Sink) ? Left : sizeof(Sink));
      IS.read(Sink, Chunk);
      if (IS.gcount() != Chunk)
        return fail("truncated oversized " + std::string(frameTypeName(F.Type)) +
                    "-frame payload (declared " + std::to_string(Len) +
                    " bytes)");
      Left -= static_cast<uint32_t>(Chunk);
    }
    if (Error)
      *Error = "payload of " + std::to_string(Len) +
               " bytes exceeds the limit of " +
               std::to_string(MaxPayloadBytes);
    return FrameReadStatus::TooLarge;
  }

  F.Payload.resize(Len);
  if (Len > 0) {
    IS.read(F.Payload.data(), static_cast<std::streamsize>(Len));
    if (IS.gcount() != static_cast<std::streamsize>(Len))
      return fail("truncated " + std::string(frameTypeName(F.Type)) +
                  "-frame payload (expected " + std::to_string(Len) +
                  " bytes, got " + std::to_string(IS.gcount()) + ")");
  }
  return FrameReadStatus::Ok;
}

std::string rc::buildRequestPayload(const CoalescingProblem &P,
                                    const std::string &Spec,
                                    int64_t DeadlineMillis) {
  std::ostringstream OS;
  OS << "rcq " << static_cast<unsigned>(kWireVersion) << "\n";
  OS << "spec " << Spec << "\n";
  if (DeadlineMillis > 0)
    OS << "deadline-ms " << DeadlineMillis << "\n";
  OS << "instance\n";
  writeChallenge(OS, P);
  return OS.str();
}

bool rc::parseRequestPayload(const std::string &Payload, WireRequest &Request,
                             std::string *Error) {
  auto fail = [Error](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  Request = WireRequest();

  std::istringstream IS(Payload);
  std::string Line;
  if (!std::getline(IS, Line) ||
      Line != "rcq " + std::to_string(static_cast<unsigned>(kWireVersion)))
    return fail("request must start with 'rcq " +
                std::to_string(static_cast<unsigned>(kWireVersion)) + "'");

  bool HaveSpec = false, HaveDeadline = false, HaveInstance = false;
  while (std::getline(IS, Line)) {
    size_t Space = Line.find(' ');
    std::string Key = Line.substr(0, Space);
    std::string Value =
        Space == std::string::npos ? "" : Line.substr(Space + 1);
    if (Key == "spec") {
      if (HaveSpec)
        return fail("duplicate 'spec' line");
      if (Value.empty())
        return fail("'spec' line without a strategy spec");
      Request.Spec = Value;
      HaveSpec = true;
    } else if (Key == "deadline-ms") {
      if (HaveDeadline)
        return fail("duplicate 'deadline-ms' line");
      char *End = nullptr;
      long long Millis = std::strtoll(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0' || Millis < 0)
        return fail("invalid 'deadline-ms' value '" + Value + "'");
      Request.DeadlineMillis = Millis;
      HaveDeadline = true;
    } else if (Line == "instance") {
      HaveInstance = true;
      std::string InstanceError;
      if (!readChallenge(IS, Request.Problem, &InstanceError))
        return fail("malformed instance: " + InstanceError);
      break; // The instance consumes the rest of the payload.
    } else {
      return fail("unknown request line '" + Line + "'");
    }
  }
  if (!HaveSpec)
    return fail("request is missing its 'spec' line");
  if (!HaveInstance)
    return fail("request is missing its 'instance' section");
  return true;
}

std::string rc::buildResponsePayload(const WireResponse &R,
                                     bool IncludeTiming) {
  std::ostringstream OS;
  JsonWriter W(OS, IncludeTiming);
  W.beginObject();
  W.key("rcs").value(kJsonSchemaVersion);
  W.key("status").value(replyStatusName(R.Status));
  if (!R.Message.empty())
    W.key("message").value(R.Message);
  if (!R.BadKey.empty()) {
    W.key("bad_key").value(R.BadKey);
    W.key("bad_value").value(R.BadValue);
  }
  if (R.Outcome) {
    W.key("result");
    writeOutcomeJson(W, *R.Outcome);
  }
  W.endObject();
  return OS.str();
}

bool rc::extractResponseStatus(const std::string &Payload,
                               std::string &Status) {
  // Responses are machine-built, so a targeted scan beats a JSON parser:
  // the status field is always the second member and statuses never need
  // escaping.
  const std::string Needle = "\"status\":\"";
  size_t Pos = Payload.find(Needle);
  if (Pos == std::string::npos)
    return false;
  size_t Start = Pos + Needle.size();
  size_t End = Payload.find('"', Start);
  if (End == std::string::npos)
    return false;
  Status = Payload.substr(Start, End - Start);
  return true;
}

bool rc::extractResponseStatus(const std::string &Payload,
                               ReplyStatus &Status) {
  std::string Name;
  return extractResponseStatus(Payload, Name) &&
         replyStatusFromName(Name, Status);
}

bool rc::extractResponseString(const std::string &Payload,
                               const std::string &Key, std::string &Value) {
  // Message and bad-option fields do need unescaping (a spec value can
  // carry quotes); mirror JsonWriter's escaping exactly.
  const std::string Needle = "\"" + Key + "\":\"";
  size_t Pos = Payload.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Value.clear();
  for (size_t I = Pos + Needle.size(); I < Payload.size();) {
    char C = Payload[I];
    if (C == '"')
      return true;
    if (C != '\\') {
      Value.push_back(C);
      ++I;
      continue;
    }
    if (I + 1 >= Payload.size())
      return false;
    char E = Payload[I + 1];
    I += 2;
    switch (E) {
    case '"':
    case '\\':
    case '/':
      Value.push_back(E);
      break;
    case 'b':
      Value.push_back('\b');
      break;
    case 'f':
      Value.push_back('\f');
      break;
    case 'n':
      Value.push_back('\n');
      break;
    case 'r':
      Value.push_back('\r');
      break;
    case 't':
      Value.push_back('\t');
      break;
    case 'u': {
      if (I + 4 > Payload.size())
        return false;
      unsigned Code = 0;
      for (unsigned D = 0; D < 4; ++D) {
        char H = Payload[I + D];
        Code <<= 4;
        if (H >= '0' && H <= '9')
          Code |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          Code |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          Code |= static_cast<unsigned>(H - 'A' + 10);
        else
          return false;
      }
      I += 4;
      // JsonWriter only \u-escapes control bytes, so one code unit is one
      // byte here.
      Value.push_back(static_cast<char>(Code & 0xff));
      break;
    }
    default:
      return false;
    }
  }
  return false; // Unterminated string: not a machine-built response.
}
