//===- service/ResultCache.cpp - Canonical-instance result cache ----------===//

#include "service/ResultCache.h"

#include "support/Digest.h"

#include <algorithm>
#include <cstring>
#include <vector>

using namespace rc;

std::string rc::canonicalRequestKey(const CoalescingProblem &P,
                                    const std::string &Spec) {
  // Absorb a canonical rendering of the instance: sorted (u < v) edges so
  // two graphs with the same edge set hash identically whatever order their
  // adjacency was built in, affinities in list order (list order is part of
  // the instance), then the spec. The leading tag versions the key schema;
  // bump it if the absorbed fields ever change.
  Digest128 D;
  D.updateString("rckey1");
  D.updateU32(P.K);
  D.updateU32(P.G.numVertices());
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  Edges.reserve(P.G.numEdges());
  for (unsigned U = 0; U < P.G.numVertices(); ++U)
    for (unsigned V : P.G.neighbors(U))
      if (V > U)
        Edges.push_back({U, V});
  std::sort(Edges.begin(), Edges.end());
  D.updateU64(Edges.size());
  for (const auto &[U, V] : Edges) {
    D.updateU32(U);
    D.updateU32(V);
  }
  D.updateU64(P.Affinities.size());
  for (const Affinity &A : P.Affinities) {
    D.updateU32(A.U);
    D.updateU32(A.V);
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(A.Weight));
    std::memcpy(&Bits, &A.Weight, sizeof(Bits));
    D.updateU64(Bits);
  }
  D.updateString(Spec);
  return D.hex();
}

bool ResultCache::lookup(const std::string &Key, std::string &Payload,
                         bool CountMiss) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    if (CountMiss)
      ++Misses;
    return false;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  Payload = It->second->second;
  ++Hits;
  return true;
}

void ResultCache::insert(const std::string &Key, std::string Payload) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Concurrent identical misses race to insert; keep the first payload
    // (byte-equal by construction) and just refresh recency.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, std::move(Payload));
  Index.emplace(Key, Lru.begin());
  if (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Lru.size();
  S.Capacity = Capacity;
  return S;
}
