//===- service/ResultCache.cpp - Canonical-instance result cache ----------===//

#include "service/ResultCache.h"

#include "challenge/ChallengeFormat.h"

#include <sstream>

using namespace rc;

std::string rc::canonicalRequestKey(const CoalescingProblem &P,
                                    const std::string &Spec) {
  std::ostringstream OS;
  writeChallenge(OS, P);
  OS << "spec " << Spec << "\n";
  return OS.str();
}

bool ResultCache::lookup(const std::string &Key, std::string &Payload,
                         bool CountMiss) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    if (CountMiss)
      ++Misses;
    return false;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  Payload = It->second->second;
  ++Hits;
  return true;
}

void ResultCache::insert(const std::string &Key, std::string Payload) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Concurrent identical misses race to insert; keep the first payload
    // (byte-equal by construction) and just refresh recency.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Key, std::move(Payload));
  Index.emplace(Key, Lru.begin());
  if (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Lru.size();
  S.Capacity = Capacity;
  return S;
}
