//===- service/Service.h - Persistent coalescing service --------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running heart of `rc_serve`: a CoalescingService owns a
/// persistent WorkerPool, a ResultCache, and the shutdown token, and turns
/// parsed WireRequests into futures of serialized responses. The transport
/// loop (ServiceLoop) stays I/O-only; everything with a policy lives here:
///
///  - *Validation first.* checkStrategySpec runs before admission, so a
///    bad spec is answered immediately (with the offending option key and
///    value) and never occupies a worker.
///  - *Cache before admission.* A hit replays the cold response's bytes
///    without touching the queue, so hot duplicate traffic cannot be
///    starved by a full queue.
///  - *Bounded admission.* At most QueueLimit requests are in flight or
///    queued; beyond that submit() answers Busy immediately. Backpressure
///    is explicit — clients see "busy" rather than unbounded latency.
///  - *Deadlines from admission.* A request's CancelToken deadline is
///    armed when the request is admitted, not when a worker picks it up,
///    so time spent queued counts against the deadline — a 50 ms deadline
///    means "answer in 50 ms or give me the partial", not "spend 50 ms of
///    CPU whenever convenient". Every token is also parent-chained to the
///    service's shutdown token.
///  - *Graceful shutdown.* shutdown(false) drains in-flight work and then
///    returns; shutdown(true) first cancels the shutdown token, so
///    cancellation-aware strategies unwind and return flagged partial
///    results (clients see "timed-out" with partial:true).
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_SERVICE_H
#define SERVICE_SERVICE_H

#include "challenge/StrategyRunner.h"
#include "runner/WorkerPool.h"
#include "service/ResultCache.h"
#include "service/WireProtocol.h"
#include "support/CancelToken.h"

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>

namespace rc {

struct ServiceConfig {
  /// Worker threads solving requests.
  unsigned Workers = 1;
  /// Admission bound: maximum requests queued or running at once.
  unsigned QueueLimit = 16;
  /// Result-cache capacity in entries; 0 disables the cache.
  size_t CacheCapacity = 256;
  /// False zeroes wall-clock fields in responses, making them byte-stable
  /// across runs (and byte-identical between cold solves and cache hits).
  bool IncludeTiming = true;
  /// The strategy entry point; defaults to runStrategy. Tests substitute
  /// deterministic fakes (e.g. block-until-cancelled) without touching the
  /// global strategy registry.
  std::function<RunResult(const RunRequest &)> Runner;
};

/// Monotone counters describing the service's lifetime, reported in the
/// shutdown acknowledgement and by stats().
struct ServiceStats {
  uint64_t Requests = 0;     ///< submit() calls, every outcome.
  uint64_t Completed = 0;    ///< Solved to completion (status ok).
  uint64_t TimedOut = 0;     ///< Deadline expired; partial answered.
  uint64_t Errors = 0;       ///< Unknown strategy / bad option.
  uint64_t Rejected = 0;     ///< Busy or shutting-down rejections.
  uint64_t BadRequests = 0;  ///< Protocol-level rejects (noteBadRequest).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheEntries = 0;
  uint64_t DrainedInFlight = 0; ///< Requests in flight when shutdown began.
};

/// One answered request.
struct ServiceReply {
  ReplyStatus Status = ReplyStatus::Ok;
  /// The payload came from the result cache (bytes of the cold solve).
  bool CacheHit = false;
  /// The serialized response payload (what goes in the Response frame).
  std::string Payload;
  /// submit()-to-reply latency as measured by the service.
  int64_t LatencyMicros = 0;
};

class CoalescingService {
public:
  explicit CoalescingService(ServiceConfig Config);

  /// Drains and stops (idempotent with shutdown()).
  ~CoalescingService();

  CoalescingService(const CoalescingService &) = delete;
  CoalescingService &operator=(const CoalescingService &) = delete;

  /// Validates, consults the cache, applies admission control, and — for
  /// admitted work — schedules \p Request on the pool. The future is
  /// fulfilled immediately for validation errors, cache hits, Busy and
  /// ShuttingDown; otherwise when the strategy finishes.
  ///
  /// \p Session, when non-null, becomes the parent of the request's
  /// deadline token instead of the service's shutdown token directly —
  /// the per-connection cancellation hook: a transport that owns a
  /// session token (itself parented under shutdownToken()) can unwind
  /// exactly its own in-flight requests when its stream is poisoned,
  /// without disturbing sibling connections.
  std::future<ServiceReply> submit(WireRequest Request,
                                   const CancelToken *Session = nullptr);

  /// The root cancellation token every admitted request chains under.
  /// Session tokens parent themselves here so a service-wide cancelling
  /// shutdown still reaches every request.
  const CancelToken &shutdownToken() const { return ShutdownToken; }

  /// Counts a protocol-level reject (unparseable payload, oversized
  /// frame) that never became a submit().
  void noteBadRequest();

  /// Stops admitting, waits for in-flight work to finish. With
  /// \p CancelInFlight, expires the shutdown token first so running
  /// strategies return flagged partials instead of finishing. Idempotent;
  /// concurrent callers all block until drained.
  void shutdown(bool CancelInFlight);

  ServiceStats stats() const;

  const ServiceConfig &config() const { return Config; }

private:
  struct Job;

  ServiceReply finishJob(Job &J, RunResult Result);
  static std::future<ServiceReply> ready(ServiceReply Reply);

  ServiceConfig Config;
  ResultCache Cache;
  CancelToken ShutdownToken;

  mutable std::mutex Mutex;
  ServiceStats Counters; // Cache fields filled from Cache at stats() time.
  unsigned InFlight = 0;
  bool Stopping = false;
  bool Drained = false;

  // Last member: the pool's destructor must run (and drain) before the
  // state above goes away.
  WorkerPool Pool;
};

/// Serializes the shutdown acknowledgement payload: a shutting-down
/// response carrying final \p Stats.
std::string buildShutdownAckPayload(const ServiceStats &Stats);

} // namespace rc

#endif // SERVICE_SERVICE_H
