//===- service/WireProtocol.h - Service wire schema -------------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned wire schema of the coalescing service. Traffic is a
/// sequence of length-prefixed frames over any byte stream (rc_serve uses
/// stdio, so the same daemon works behind a socket wrapper, inetd, or a
/// pipe):
///
///   offset  size  field
///   0       4     magic "RCSP"
///   4       1     protocol version (kWireVersion)
///   5       1     frame type (FrameType)
///   6       4     payload length, unsigned big-endian
///   10      N     payload bytes
///
/// Parse-or-reject is strict: a frame with a bad magic, unknown version or
/// type, or a truncated header/payload is Malformed and poisons the stream
/// (the daemon answers nothing further and exits non-zero). The one
/// recoverable frame-level error is an oversized payload — the length field
/// is trusted, the payload is skipped, and the daemon answers a BadRequest
/// so a buggy client learns its limit without killing everyone else's
/// connection.
///
/// Request payloads are the challenge text format plus a tiny header (one
/// "key value" line each, header keys exactly once, `instance` last since
/// the rest of the payload is the instance):
///
///   rcq 1
///   spec briggs+george
///   deadline-ms 250        (optional; 0 or absent = no deadline)
///   instance
///   k 4
///   n 8
///   ...
///
/// Response payloads are JSON: {"rcs":1,"status":"<wire status>", then
/// optional "message", "bad_key"/"bad_value" (BadOption), and "result"
/// (the standard outcome object, exactly what writeOutcomeJson emits) for
/// ok/timed-out}. Shutdown frames carry "" or "drain" (finish in-flight
/// work) or "now" (cancel in-flight work; partial results are flagged);
/// the service acknowledges with a shutting-down response carrying final
/// stats.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_WIREPROTOCOL_H
#define SERVICE_WIREPROTOCOL_H

#include "challenge/StrategyRunner.h"
#include "coalescing/Problem.h"
#include "service/ReplyStatus.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

namespace rc {

/// Wire protocol version; bump on any frame-layout or grammar change.
constexpr uint8_t kWireVersion = 1;

/// Frames larger than this are rejected (and skipped) by default. Large
/// enough for ~million-edge instances in text form, small enough that a
/// corrupt length field cannot make the daemon buffer gigabytes.
constexpr uint32_t kDefaultMaxPayloadBytes = 8u << 20;

enum class FrameType : uint8_t {
  Request = 1,  ///< Client -> daemon: one coalescing request.
  Response = 2, ///< Daemon -> client: one response, in request order.
  Shutdown = 3, ///< Client -> daemon: stop accepting, drain, acknowledge.
};

struct Frame {
  FrameType Type = FrameType::Request;
  std::string Payload;
};

/// Short stable name of \p T for diagnostics ("request", "response",
/// "shutdown").
const char *frameTypeName(FrameType T);

enum class FrameReadStatus {
  Ok,        ///< A frame was read into the out-parameter.
  Eof,       ///< Clean end of stream (before any header byte).
  TooLarge,  ///< Valid header, oversized payload; skipped, stream usable.
  Malformed, ///< Bad magic/version/type or truncation; stream poisoned.
};

/// Writes one frame (header + \p Payload) to \p OS. Payloads above 4 GiB
/// are a caller bug (asserted; the length field is 32-bit).
void writeFrame(std::ostream &OS, FrameType Type, const std::string &Payload);

/// Reads one frame into \p F. On TooLarge the payload is consumed and the
/// next frame can be read; on Malformed the stream position is undefined.
/// \p Error receives a diagnostic for TooLarge and Malformed.
FrameReadStatus readFrame(std::istream &IS, Frame &F,
                          uint32_t MaxPayloadBytes = kDefaultMaxPayloadBytes,
                          std::string *Error = nullptr);

/// A parsed request payload.
struct WireRequest {
  std::string Spec;
  int64_t DeadlineMillis = 0;
  CoalescingProblem Problem;
};

/// Builds a request payload for \p P under \p Spec.
std::string buildRequestPayload(const CoalescingProblem &P,
                                const std::string &Spec,
                                int64_t DeadlineMillis = 0);

/// Parses a request payload; strict: the version line must come first,
/// header keys are known and unique, `spec` and `instance` are required,
/// and the instance must parse as challenge text.
/// \returns false with a diagnostic in \p Error otherwise.
bool parseRequestPayload(const std::string &Payload, WireRequest &Request,
                         std::string *Error = nullptr);

/// Everything a response payload can carry.
struct WireResponse {
  ReplyStatus Status = ReplyStatus::Ok;
  /// Diagnostic for non-Ok statuses.
  std::string Message;
  /// The offending option key/value for BadOption.
  std::string BadKey;
  std::string BadValue;
  /// Borrowed outcome for Ok / TimedOut; null omits "result".
  const StrategyOutcome *Outcome = nullptr;
};

/// Serializes \p R as a response payload. \p IncludeTiming false zeroes
/// wall-clock fields so equal work serializes byte-identically (this is
/// also what makes cached responses replayable verbatim).
std::string buildResponsePayload(const WireResponse &R, bool IncludeTiming);

/// Extracts the "status" field of a response payload (cheap scan, no JSON
/// parser). Returns false if the payload does not look like a response.
bool extractResponseStatus(const std::string &Payload, std::string &Status);

/// Typed variant: also fails when the status string is not a ReplyStatus
/// wire name. The one from-wire path (rc::Client, rc_request --decode).
bool extractResponseStatus(const std::string &Payload, ReplyStatus &Status);

/// Extracts a top-level string member of a response payload ("message",
/// "bad_key", "bad_value"), unescaping the JSON string. Returns false when
/// the key is absent. Responses are machine-built by buildResponsePayload,
/// so a targeted scan is sound — keys appear at most once.
bool extractResponseString(const std::string &Payload, const std::string &Key,
                           std::string &Value);

} // namespace rc

#endif // SERVICE_WIREPROTOCOL_H
