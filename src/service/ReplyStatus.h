//===- service/ReplyStatus.h - The one reply-status vocabulary --*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How a served request ended, as one typed vocabulary shared by every
/// layer that touches a reply: the service core builds replies with it,
/// the wire schema serializes it ("status":"busy"), and rc::Client parses
/// it back into the same enum. The wire names live in exactly two
/// functions here — replyStatusName (to wire) and replyStatusFromName
/// (from wire) — so no caller ever string-compares a status again.
///
/// The enum extends RunStatus (the strategy-evaluation outcomes) with the
/// service-level endings: protocol rejects, admission backpressure, and
/// shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_REPLYSTATUS_H
#define SERVICE_REPLYSTATUS_H

#include <string>

namespace rc {

enum class RunStatus;

enum class ReplyStatus {
  Ok,
  UnknownStrategy,
  BadOption,
  TimedOut,
  BadRequest,   ///< Unparseable request payload or oversized frame.
  Busy,         ///< Admission control rejected the request; retry later.
  ShuttingDown, ///< The service is draining; no new work accepted.
};

/// Short stable wire name of \p S for the response "status" field.
const char *replyStatusName(ReplyStatus S);

/// Parses a wire name back into the enum. \returns false when \p Name is
/// not a reply status (the caller is looking at a foreign or corrupt
/// payload).
bool replyStatusFromName(const std::string &Name, ReplyStatus &S);

/// The RunStatus subset maps onto the same wire names.
ReplyStatus replyStatusFromRun(RunStatus S);

/// A reply carries a strategy result exactly for these two statuses (a
/// complete outcome for Ok, a flagged partial for TimedOut).
inline bool replyStatusHasResult(ReplyStatus S) {
  return S == ReplyStatus::Ok || S == ReplyStatus::TimedOut;
}

} // namespace rc

#endif // SERVICE_REPLYSTATUS_H
