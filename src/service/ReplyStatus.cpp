//===- service/ReplyStatus.cpp - The one reply-status vocabulary ----------===//

#include "service/ReplyStatus.h"

#include "challenge/StrategyRunner.h"

using namespace rc;

const char *rc::replyStatusName(ReplyStatus S) {
  switch (S) {
  case ReplyStatus::Ok:
    return "ok";
  case ReplyStatus::UnknownStrategy:
    return "unknown-strategy";
  case ReplyStatus::BadOption:
    return "bad-option";
  case ReplyStatus::TimedOut:
    return "timed-out";
  case ReplyStatus::BadRequest:
    return "bad-request";
  case ReplyStatus::Busy:
    return "busy";
  case ReplyStatus::ShuttingDown:
    return "shutting-down";
  }
  return "?";
}

bool rc::replyStatusFromName(const std::string &Name, ReplyStatus &S) {
  static const ReplyStatus All[] = {
      ReplyStatus::Ok,         ReplyStatus::UnknownStrategy,
      ReplyStatus::BadOption,  ReplyStatus::TimedOut,
      ReplyStatus::BadRequest, ReplyStatus::Busy,
      ReplyStatus::ShuttingDown,
  };
  for (ReplyStatus Candidate : All) {
    if (Name == replyStatusName(Candidate)) {
      S = Candidate;
      return true;
    }
  }
  return false;
}

ReplyStatus rc::replyStatusFromRun(RunStatus S) {
  switch (S) {
  case RunStatus::Ok:
    return ReplyStatus::Ok;
  case RunStatus::UnknownStrategy:
    return ReplyStatus::UnknownStrategy;
  case RunStatus::BadOption:
    return ReplyStatus::BadOption;
  case RunStatus::TimedOut:
    return ReplyStatus::TimedOut;
  }
  return ReplyStatus::BadRequest;
}
