//===- service/Client.h - Native service client library ---------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rc::Client is the one way tools and the allocator pipeline talk to a
/// coalescing daemon: it owns the connection, the frame plumbing, and the
/// status mapping, so callers submit problems and pattern-match typed
/// results instead of hand-rolling writeFrame/readFrame/string-compare
/// chains.
///
///   Endpoint E;
///   parseEndpoint("unix:/tmp/rc.sock", E);
///   Expected<Client> C = Client::connect(E);
///   if (!C) { /* C.error().Message */ }
///   Expected<ClientReply> R = C->submit(Problem, "briggs+george", 250);
///   if (R) { /* R->Payload is the response JSON, R->Result the outcome */ }
///   else if (R.error().Kind == ClientErrorKind::Busy) { /* retry later */ }
///
/// Error taxonomy (ClientErrorKind): transport-level failures (Connect,
/// Transport, Protocol) mean the connection is gone — the client closes
/// it and every later call fails fast; request-level failures
/// (BadRequest, UnknownStrategy, BadOption, TimedOut, Busy, ShuttingDown)
/// describe one reply and leave the connection usable. BadOption carries
/// the offending key/value, TimedOut carries the flagged partial-result
/// payload — nothing is flattened into strings.
///
/// submitAll pipelines: every request frame is written (one flush), then
/// the replies are read in order — the daemon's ordered-reply loop
/// guarantees the correspondence — so N round-trip latencies collapse
/// into one.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_CLIENT_H
#define SERVICE_CLIENT_H

#include "coalescing/Problem.h"
#include "service/ReplyStatus.h"
#include "service/SocketTransport.h"
#include "service/WireProtocol.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rc {

enum class ClientErrorKind {
  // Connection-fatal: the client closes the socket; later calls fail fast.
  Connect,   ///< Could not reach the endpoint.
  Transport, ///< The connection dropped mid-conversation.
  Protocol,  ///< The daemon sent bytes that do not parse as a response.
  // Request-level: one reply; the connection stays usable.
  BadRequest,      ///< The daemon could not parse our request.
  UnknownStrategy, ///< The spec named no registered strategy.
  BadOption,       ///< The spec carried a bad option (see BadKey/BadValue).
  TimedOut,        ///< Deadline expired; Partial holds the flagged result.
  Busy,            ///< Admission or connection backpressure; retry later.
  ShuttingDown,    ///< The daemon is draining; no new work accepted.
};

/// Short stable name of \p K for logs and diagnostics.
const char *clientErrorKindName(ClientErrorKind K);

struct ClientError {
  ClientErrorKind Kind = ClientErrorKind::Transport;
  /// Human-readable diagnostic (the daemon's "message" field when the
  /// reply carried one).
  std::string Message;
  /// The offending option, for BadOption.
  std::string BadKey;
  std::string BadValue;
  /// The partial-result response payload, for TimedOut — everything the
  /// strategy managed before the deadline, flagged partial.
  std::string Partial;
};

/// A successful reply: the daemon's response payload (JSON, exactly the
/// bytes a stdio pipe would have seen — cache hits replay cold bytes).
struct ClientReply {
  ReplyStatus Status = ReplyStatus::Ok;
  std::string Payload;
};

/// A minimal expected/error union for client results. Deliberately tiny:
/// default-constructible payloads only, no exceptions.
template <typename T> class Expected {
public:
  Expected(T Value) : HasValue(true), Value(std::move(Value)) {}
  Expected(ClientError E) : HasValue(false), Err(std::move(E)) {}

  explicit operator bool() const { return HasValue; }
  T &operator*() { return Value; }
  const T &operator*() const { return Value; }
  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }
  /// Valid only when the Expected is false-y.
  const ClientError &error() const { return Err; }

private:
  bool HasValue;
  T Value{};
  ClientError Err{};
};

/// How Client::shutdownServer asks the daemon to stop.
enum class ShutdownMode {
  Drain, ///< Finish in-flight work, then acknowledge.
  Now,   ///< Cancel in-flight work (partials are flagged), then acknowledge.
};

class Client {
public:
  /// An unconnected client; every call fails with a Connect error until
  /// connect() succeeds.
  Client() = default;
  Client(Client &&) = default;
  Client &operator=(Client &&) = default;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Dials \p E.
  static Expected<Client> connect(const Endpoint &E);

  bool connected() const { return Stream != nullptr; }
  const Endpoint &endpoint() const { return Ep; }

  /// One request as the client library sees it: a borrowed problem, a
  /// strategy spec, and an optional deadline.
  struct Request {
    const CoalescingProblem *Problem = nullptr;
    std::string Spec;
    int64_t DeadlineMillis = 0;
  };

  /// Round-trips one request.
  Expected<ClientReply> submit(const CoalescingProblem &Problem,
                               const std::string &Spec,
                               int64_t DeadlineMillis = 0);

  /// Pipelines \p Requests: writes every frame, then reads the replies in
  /// request order. Entry i is request i's outcome; a transport failure
  /// fails every not-yet-answered entry and closes the connection.
  std::vector<Expected<ClientReply>>
  submitAll(const std::vector<Request> &Requests);

  /// Sends a Shutdown frame and waits for the stats-carrying ack (its
  /// payload is the reply). The connection is closed afterwards either
  /// way.
  Expected<ClientReply> shutdownServer(ShutdownMode Mode);

  /// Drops the connection (idempotent).
  void close() { Stream.reset(); }

private:
  Expected<ClientReply> readReply(bool ExpectShutdownAck);
  ClientError connectionFatal(ClientErrorKind Kind, std::string Message);

  std::unique_ptr<SocketStream> Stream;
  Endpoint Ep;
};

} // namespace rc

#endif // SERVICE_CLIENT_H
