//===- service/Listener.cpp - Socket accept loop --------------------------===//

#include "service/Listener.h"

#include "service/ServiceLoop.h"

#include <utility>

#include <unistd.h>

using namespace rc;

Listener::Listener(CoalescingService &Service, ListenerConfig Config)
    : Service(Service), Config(std::move(Config)) {}

Listener::~Listener() {
  reapConnections(/*All=*/true);
  if (ListenFd >= 0) {
    closeFd(ListenFd);
    ListenFd = -1;
    if (Bound.Kind == EndpointKind::Unix)
      ::unlink(Bound.Path.c_str());
  }
}

bool Listener::open(std::string *Error) {
  ListenFd = listenOnEndpoint(Config.Ep, Error);
  if (ListenFd < 0)
    return false;
  if (!rc::boundEndpoint(ListenFd, Bound, Error)) {
    closeFd(ListenFd);
    ListenFd = -1;
    return false;
  }
  return true;
}

void Listener::refuseBusy(int Fd) {
  WireResponse R;
  R.Status = ReplyStatus::Busy;
  R.Message = "connection limit of " + std::to_string(Config.MaxConnections) +
              " reached; retry later";
  // SocketStream flushes and closes the fd on scope exit; a client that
  // already hung up just makes the write a no-op.
  SocketStream Stream(Fd);
  writeFrame(Stream.out(), FrameType::Response,
             buildResponsePayload(R, Service.config().IncludeTiming));
}

void Listener::serveConnection(Connection &Conn) {
  ServiceLoopOptions Options;
  Options.MaxPayloadBytes = Config.MaxPayloadBytes;
  Options.OwnsService = false;
  // Any client may retire the daemon with a Shutdown frame; close the
  // door before the service drain so the final stats cannot grow.
  Options.OnShutdownRequest = [this](bool) { requestStop(); };

  std::string Error;
  bool Clean = runServiceLoop(Conn.Stream->in(), Conn.Stream->out(), Service,
                              Options, &Error);
  if (!Clean) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Poisoned;
  }
  Live.fetch_sub(1, std::memory_order_relaxed);
  Conn.Done.store(true, std::memory_order_release);
}

void Listener::reapConnections(bool All) {
  // Move the candidates out under the lock, join outside it: a connection
  // thread takes the same lock to count a poisoned stream, so joining
  // under the lock could deadlock with the thread being joined.
  std::vector<std::unique_ptr<Connection>> Finished;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < Connections.size();) {
      if (All || Connections[I]->Done.load(std::memory_order_acquire)) {
        Finished.push_back(std::move(Connections[I]));
        if (I + 1 != Connections.size())
          Connections[I] = std::move(Connections.back());
        Connections.pop_back();
      } else {
        ++I;
      }
    }
  }
  for (std::unique_ptr<Connection> &Conn : Finished)
    if (Conn->Thread.joinable())
      Conn->Thread.join();
  // ~Connection drops the last SocketStream reference, closing the fd.
}

bool Listener::run(std::string *Error) {
  if (ListenFd < 0 && !open(Error))
    return false;

  bool Ok = true;
  while (!Stop.load(std::memory_order_relaxed)) {
    std::string AcceptError;
    int Fd = acceptConnection(ListenFd, /*TimeoutMillis=*/100, &AcceptError);
    if (Fd < 0) {
      if (AcceptError.empty()) {
        // Timeout or signal: re-check the stop flag, reap stragglers so
        // long-lived daemons do not accumulate finished threads.
        reapConnections(/*All=*/false);
        continue;
      }
      if (Error)
        *Error = AcceptError;
      Ok = false;
      break;
    }

    if (Live.load(std::memory_order_relaxed) >= Config.MaxConnections) {
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.Refused;
      }
      refuseBusy(Fd);
      continue;
    }

    auto Conn = std::make_unique<Connection>();
    Conn->Stream = std::make_shared<SocketStream>(Fd);
    Live.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.Accepted;
    }
    Connection &Ref = *Conn;
    Ref.Thread = std::thread([this, &Ref] { serveConnection(Ref); });
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Connections.push_back(std::move(Conn));
    }
    reapConnections(/*All=*/false);
  }

  // Drain: close the door first, then nudge the remaining connections
  // with a read-side shutdown — their loops observe EOF, flush every
  // reply already owed, and finish. Joining them completes the drain.
  closeFd(ListenFd);
  ListenFd = -1;
  if (Bound.Kind == EndpointKind::Unix)
    ::unlink(Bound.Path.c_str());
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const std::unique_ptr<Connection> &Conn : Connections)
      if (!Conn->Done.load(std::memory_order_acquire))
        Conn->Stream->shutdownRead();
  }
  reapConnections(/*All=*/true);
  Service.shutdown(false);
  return Ok;
}

Listener::Stats Listener::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
