//===- service/ServiceLoop.h - Frame transport loop -------------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The I/O half of rc_serve: reads frames from an input stream, feeds them
/// to a CoalescingService, and writes response frames in request order.
/// The loop is transport-only — no policy; validation, admission, caching
/// and shutdown semantics all live in the service.
///
/// Two threads: a reader parses frames and enqueues ordered reply slots
/// (an immediate payload for protocol errors, a future for admitted work);
/// the caller's thread drains the queue, waiting on each future in turn,
/// so responses always leave in request order while the reader keeps
/// pulling requests — a pipelining client never deadlocks on a full pipe.
///
/// Error discipline mirrors the wire schema: an oversized frame or an
/// unparseable request payload is answered with a bad-request response and
/// the stream continues; a malformed frame poisons the stream — the loop
/// cancels in-flight work, flushes the responses already owed, and returns
/// false. Clean endings are a Shutdown frame (acknowledged with final
/// stats) or EOF (drain silently).
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_SERVICELOOP_H
#define SERVICE_SERVICELOOP_H

#include "service/Service.h"
#include "service/WireProtocol.h"

#include <functional>
#include <istream>
#include <ostream>
#include <string>

namespace rc {

struct ServiceLoopOptions {
  /// Frames with larger payloads are answered bad-request and skipped.
  uint32_t MaxPayloadBytes = kDefaultMaxPayloadBytes;

  /// True (the stdio daemon): this loop is the service's only client, so
  /// every ending — EOF, Shutdown frame, poisoned stream — shuts the
  /// service down before returning.
  ///
  /// False (one socket connection among many, the Listener's mode): EOF
  /// and a poisoned stream end only this connection — poisoning cancels
  /// the connection's own in-flight work through its session token and
  /// never disturbs sibling connections. A Shutdown frame still shuts the
  /// shared service down (any client may retire the daemon); the listener
  /// hears about it first through OnShutdownRequest.
  bool OwnsService = true;

  /// Called when a Shutdown frame arrives, before the service drain
  /// begins — the Listener's hook to stop accepting and close the listen
  /// socket so the drain cannot race new connections.
  std::function<void(bool CancelInFlight)> OnShutdownRequest;
};

/// Serves frames from \p In to \p Out until a Shutdown frame, EOF, or a
/// malformed frame. With Options.OwnsService (the default) the service is
/// always left shut down (drained; cancelled first when the stream was
/// poisoned or the Shutdown frame asked for "now"); otherwise see
/// ServiceLoopOptions.
/// \returns true on a clean ending, false when the connection failed — a
/// malformed frame poisoned the input, or the output stream stopped
/// accepting response bytes. \p Error is always filled on a false return,
/// naming the offending frame type and length when one is known.
bool runServiceLoop(std::istream &In, std::ostream &Out,
                    CoalescingService &Service,
                    const ServiceLoopOptions &Options = ServiceLoopOptions(),
                    std::string *Error = nullptr);

} // namespace rc

#endif // SERVICE_SERVICELOOP_H
