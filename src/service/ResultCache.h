//===- service/ResultCache.h - Canonical-instance result cache -*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache from canonical (instance, strategy spec) keys to serialized
/// response payloads. The service consults it before admitting work, so
/// identical graphs across requests — common when many clients compile the
/// same code — are answered without re-solving.
///
/// The key is a fixed-size 128-bit content digest (support/Digest.h) over a
/// canonical rendering of the instance — k, n, the edge set in sorted
/// (u < v) order, the affinity list, and the spec — so two requests for the
/// same graph key identically however their adjacency was built, and the
/// key costs 32 bytes however large the instance. Earlier revisions keyed
/// on the full canonical challenge text to make collisions structurally
/// impossible, but at 10^5..10^6-vertex instances that means megabytes of
/// key per entry and a full serialize per lookup; 128 bits of
/// MurmurHash3 keeps accidental-collision odds negligible (~2^-64 across
/// billions of distinct instances) at constant cost.
///
/// Values are complete serialized response payloads (timing-suppressed by
/// the service when byte-stable replay is wanted), so a warm hit is a
/// verbatim byte replay of the cold response — the golden-corpus guard in
/// tests/ServiceTest.cpp holds the service to exactly that.
///
/// Only Ok responses are cached: timed-out partials depend on the deadline
/// that produced them, and error responses are cheap to recompute.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_RESULTCACHE_H
#define SERVICE_RESULTCACHE_H

#include "coalescing/Problem.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace rc {

/// Builds the canonical cache key for \p P under \p Spec.
std::string canonicalRequestKey(const CoalescingProblem &P,
                                const std::string &Spec);

class ResultCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0;
    uint64_t Capacity = 0;
  };

  /// A cache holding up to \p Capacity entries; 0 disables caching (every
  /// lookup misses, inserts are dropped).
  explicit ResultCache(size_t Capacity) : Capacity(Capacity) {}

  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Looks up \p Key; on a hit copies the payload into \p Payload and
  /// refreshes recency. Counts the hit; counts the miss only when
  /// \p CountMiss — the service re-checks at execution time (an identical
  /// request may have finished while this one sat in the queue) and that
  /// second chance must not double-count the admission-time miss.
  /// Thread-safe.
  bool lookup(const std::string &Key, std::string &Payload,
              bool CountMiss = true);

  /// Inserts (or refreshes) \p Key -> \p Payload, evicting the least
  /// recently used entry beyond capacity. Thread-safe.
  void insert(const std::string &Key, std::string Payload);

  Stats stats() const;

private:
  using Entry = std::pair<std::string, std::string>; // key, payload

  mutable std::mutex Mutex;
  size_t Capacity;
  std::list<Entry> Lru; // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace rc

#endif // SERVICE_RESULTCACHE_H
