//===- service/Service.cpp - Persistent coalescing service ----------------===//

#include "service/Service.h"

#include "support/JsonWriter.h"

#include <cassert>
#include <chrono>
#include <sstream>
#include <utility>

using namespace rc;

namespace {

int64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

/// One admitted request: owns the parsed request (the instance in
/// particular), its deadline token, and the promise the transport loop
/// waits on. Held by shared_ptr so the pool task keeps it alive after
/// submit() returns.
struct CoalescingService::Job {
  WireRequest Request;
  std::string Key;
  CancelToken Deadline;
  std::chrono::steady_clock::time_point Start;
  std::promise<ServiceReply> Promise;
};

CoalescingService::CoalescingService(ServiceConfig Config)
    : Config(std::move(Config)), Cache(this->Config.CacheCapacity),
      Pool(this->Config.Workers < 1 ? 1 : this->Config.Workers) {}

CoalescingService::~CoalescingService() { shutdown(false); }

std::future<ServiceReply> CoalescingService::ready(ServiceReply Reply) {
  std::promise<ServiceReply> P;
  P.set_value(std::move(Reply));
  return P.get_future();
}

std::future<ServiceReply> CoalescingService::submit(WireRequest Request,
                                                    const CancelToken *Session) {
  auto Start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Requests;
    if (Stopping) {
      ++Counters.Rejected;
      ServiceReply Reply;
      Reply.Status = ReplyStatus::ShuttingDown;
      WireResponse R;
      R.Status = ReplyStatus::ShuttingDown;
      R.Message = "service is shutting down";
      Reply.Payload = buildResponsePayload(R, Config.IncludeTiming);
      Reply.LatencyMicros = microsSince(Start);
      return ready(std::move(Reply));
    }
  }

  // Validation first: a bad spec never occupies a worker, and the error
  // names the offending option.
  SpecError Error;
  RunStatus SpecStatus = checkStrategySpec(Request.Spec, Error);
  if (SpecStatus != RunStatus::Ok) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.Errors;
    }
    WireResponse R;
    R.Status = replyStatusFromRun(SpecStatus);
    R.Message = Error.Message;
    R.BadKey = Error.Key;
    R.BadValue = Error.Value;
    ServiceReply Reply;
    Reply.Status = R.Status;
    Reply.Payload = buildResponsePayload(R, Config.IncludeTiming);
    Reply.LatencyMicros = microsSince(Start);
    return ready(std::move(Reply));
  }

  // Cache before admission: hot duplicates bypass the queue entirely and
  // replay the cold response's bytes.
  std::string Key = canonicalRequestKey(Request.Problem, Request.Spec);
  if (Config.CacheCapacity > 0) {
    std::string Cached;
    if (Cache.lookup(Key, Cached)) {
      ServiceReply Reply;
      Reply.Status = ReplyStatus::Ok;
      Reply.CacheHit = true;
      Reply.Payload = std::move(Cached);
      Reply.LatencyMicros = microsSince(Start);
      return ready(std::move(Reply));
    }
  }

  // Bounded admission.
  auto J = std::make_shared<Job>();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping || InFlight >= Config.QueueLimit) {
      ++Counters.Rejected;
      WireResponse R;
      R.Status = Stopping ? ReplyStatus::ShuttingDown : ReplyStatus::Busy;
      R.Message = Stopping ? "service is shutting down"
                           : "queue limit of " +
                                 std::to_string(Config.QueueLimit) +
                                 " requests reached; retry later";
      ServiceReply Reply;
      Reply.Status = R.Status;
      Reply.Payload = buildResponsePayload(R, Config.IncludeTiming);
      Reply.LatencyMicros = microsSince(Start);
      return ready(std::move(Reply));
    }
    ++InFlight;
  }

  J->Request = std::move(Request);
  J->Key = std::move(Key);
  J->Start = Start;
  // The deadline is armed at admission, not at pickup: time spent queued
  // counts, so a deadline bounds the client's wait, not the worker's CPU.
  if (J->Request.DeadlineMillis > 0)
    J->Deadline.setDeadline(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(
                                J->Request.DeadlineMillis));
  J->Deadline.setParent(Session ? Session : &ShutdownToken);

  std::future<ServiceReply> Future = J->Promise.get_future();
  Pool.submit([this, J]() {
    // Second-chance lookup: an identical request may have completed while
    // this one sat in the queue (pipelined duplicates miss at admission
    // because the first copy is still solving). The admission-time miss is
    // already counted, so this probe never double-counts.
    if (Config.CacheCapacity > 0) {
      std::string Cached;
      if (Cache.lookup(J->Key, Cached, /*CountMiss=*/false)) {
        ServiceReply Reply;
        Reply.Status = ReplyStatus::Ok;
        Reply.CacheHit = true;
        Reply.Payload = std::move(Cached);
        Reply.LatencyMicros = microsSince(J->Start);
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          assert(InFlight > 0 && "cache replay without admission");
          --InFlight;
        }
        J->Promise.set_value(std::move(Reply));
        return;
      }
    }
    RunRequest RR;
    RR.Problem = &J->Request.Problem;
    RR.Spec = J->Request.Spec;
    RR.Cancel = &J->Deadline;
    RunResult Result =
        Config.Runner ? Config.Runner(RR) : runStrategy(RR);
    J->Promise.set_value(finishJob(*J, std::move(Result)));
  });
  return Future;
}

ServiceReply CoalescingService::finishJob(Job &J, RunResult Result) {
  WireResponse R;
  R.Status = replyStatusFromRun(Result.Status);
  R.Message = Result.Message;
  if (Result.hasOutcome())
    R.Outcome = &Result.Outcome;

  ServiceReply Reply;
  Reply.Status = R.Status;
  Reply.Payload = buildResponsePayload(R, Config.IncludeTiming);
  Reply.LatencyMicros = microsSince(J.Start);

  // Only complete runs are cached: partials depend on the deadline that
  // cut them short, and errors are cheap to recompute.
  if (R.Status == ReplyStatus::Ok && Config.CacheCapacity > 0)
    Cache.insert(J.Key, Reply.Payload);

  std::lock_guard<std::mutex> Lock(Mutex);
  switch (R.Status) {
  case ReplyStatus::Ok:
    ++Counters.Completed;
    break;
  case ReplyStatus::TimedOut:
    ++Counters.TimedOut;
    break;
  default:
    ++Counters.Errors;
    break;
  }
  assert(InFlight > 0 && "finishJob without admission");
  --InFlight;
  return Reply;
}

void CoalescingService::noteBadRequest() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.BadRequests;
}

void CoalescingService::shutdown(bool CancelInFlight) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Stopping) {
      Stopping = true;
      Counters.DrainedInFlight = InFlight;
    }
  }
  if (CancelInFlight)
    ShutdownToken.cancel();
  Pool.drain();
  std::lock_guard<std::mutex> Lock(Mutex);
  Drained = true;
}

ServiceStats CoalescingService::stats() const {
  ServiceStats S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S = Counters;
  }
  ResultCache::Stats C = Cache.stats();
  S.CacheHits = C.Hits;
  S.CacheMisses = C.Misses;
  S.CacheEvictions = C.Evictions;
  S.CacheEntries = C.Entries;
  return S;
}

std::string rc::buildShutdownAckPayload(const ServiceStats &Stats) {
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.key("rcs").value(kJsonSchemaVersion);
  W.key("status").value(replyStatusName(ReplyStatus::ShuttingDown));
  W.key("stats");
  W.beginObject();
  W.key("requests").value(Stats.Requests);
  W.key("completed").value(Stats.Completed);
  W.key("timed_out").value(Stats.TimedOut);
  W.key("errors").value(Stats.Errors);
  W.key("rejected").value(Stats.Rejected);
  W.key("bad_requests").value(Stats.BadRequests);
  W.key("cache_hits").value(Stats.CacheHits);
  W.key("cache_misses").value(Stats.CacheMisses);
  W.key("cache_evictions").value(Stats.CacheEvictions);
  W.key("cache_entries").value(Stats.CacheEntries);
  W.key("drained_in_flight").value(Stats.DrainedInFlight);
  W.endObject();
  W.endObject();
  return OS.str();
}
