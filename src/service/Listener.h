//===- service/Listener.h - Socket accept loop ------------------*- C++ -*-===//
//
// Part of the register-coalescing-complexity project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accept loop that turns one CoalescingService into a multi-client
/// daemon: every accepted connection gets its own thread running
/// runServiceLoop (reply ordering is per-connection), while the worker
/// pool, the result cache, and the admission bound stay shared — client
/// N+1 warms the same cache client 1 filled.
///
/// Policy decisions live here, not in the loop:
///
///  - *Connection cap.* At most MaxConnections live connections; one
///    more is answered with a single busy Response frame at accept time
///    and closed — backpressure at the transport boundary, symmetric to
///    the service's queue-limit busy at the request boundary.
///  - *Poison isolation.* A malformed frame poisons only its own
///    connection: the loop runs in shared mode, so the connection's
///    session token cancels that client's in-flight work and siblings
///    never notice.
///  - *Drain discipline.* Stopping — requestStop() (the SIGINT path; it
///    is async-signal-safe) or any client's Shutdown frame — first stops
///    accepting and closes the listen socket, then nudges the remaining
///    connections with a read-side shutdown so their loops see EOF, flush
///    every reply already owed, and finish; run() joins them all and
///    leaves the service drained. No fd outlives run().
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_LISTENER_H
#define SERVICE_LISTENER_H

#include "service/Service.h"
#include "service/SocketTransport.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rc {

struct ListenerConfig {
  Endpoint Ep;
  /// Live-connection cap; one more is answered busy at accept.
  unsigned MaxConnections = 32;
  /// Forwarded to each connection's service loop.
  uint32_t MaxPayloadBytes = kDefaultMaxPayloadBytes;
};

class Listener {
public:
  Listener(CoalescingService &Service, ListenerConfig Config);

  /// Joins any stragglers and closes the listen socket (idempotent with
  /// the end of run()).
  ~Listener();

  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on the configured endpoint. Separate from run() so
  /// callers can learn the bound endpoint (tcp:0) before serving.
  /// \returns false with a diagnostic in \p Error.
  bool open(std::string *Error = nullptr);

  /// The endpoint actually bound (the OS-assigned port for tcp:0). Valid
  /// after a successful open().
  const Endpoint &boundEndpoint() const { return Bound; }

  /// Serves until requestStop() or a client's Shutdown frame; then drains:
  /// closes the listen socket, read-shuts the remaining connections, joins
  /// every connection thread, and shuts the service down. \returns false
  /// with a diagnostic only when accepting itself failed; per-connection
  /// protocol errors are counted, not fatal.
  bool run(std::string *Error = nullptr);

  /// Asks run() to stop and drain. Async-signal-safe (one atomic store):
  /// the stdio daemon calls this from its SIGINT handler. Callable from
  /// any thread, including a connection thread handling a Shutdown frame.
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  struct Stats {
    uint64_t Accepted = 0; ///< Connections served (incl. still live).
    uint64_t Refused = 0;  ///< Answered busy at accept (cap reached).
    uint64_t Poisoned = 0; ///< Connections ended by a protocol error.
  };
  Stats stats() const;

private:
  struct Connection {
    std::shared_ptr<SocketStream> Stream;
    std::thread Thread;
    std::atomic<bool> Done{false};
  };

  void serveConnection(Connection &Conn);
  void refuseBusy(int Fd);
  /// Joins finished connection threads; with \p All, joins every one.
  void reapConnections(bool All);

  CoalescingService &Service;
  ListenerConfig Config;
  Endpoint Bound;
  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> Live{0};

  mutable std::mutex Mutex; ///< Guards Connections and Counters.
  std::vector<std::unique_ptr<Connection>> Connections;
  Stats Counters;
};

} // namespace rc

#endif // SERVICE_LISTENER_H
