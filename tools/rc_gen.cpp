//===- tools/rc_gen.cpp - Parallel instance corpus generator ----------------===//
//
// Generates a corpus of coalescing instances in parallel (one worker task
// per instance, runner/CorpusGen.h) and writes each to its own file under
// --out. Entries come from a generator manifest (--manifest; `file` lines
// are rejected — they name existing instances) or from a one-line template
// replicated --count times with per-instance derived RNG streams
// (deriveSeed(--seed, index)), so the corpus bytes are identical at any
// --jobs count.
//
// Examples:
//   rc_gen --out corpus --template "subtree n=65536 slack=2" --count 16
//          --seed 7 --jobs 8 --manifest-out corpus/sweep.manifest
//   rc_gen --out corpus --manifest gen.manifest --format text
//
//===----------------------------------------------------------------------===//

#include "runner/CorpusGen.h"
#include "support/ArgParser.h"

#include <iostream>

using namespace rc;

int main(int Argc, char **Argv) {
  std::string OutDir;
  std::string ManifestPath;
  std::string Template;
  std::string ManifestOut;
  std::string Format = "binary";
  long long Count = 0;
  long long Seed = 1;
  long long Jobs = 1;

  ArgParser Parser("rc_gen",
                   "--out DIR (--manifest FILE | --template LINE --count N)"
                   " [flags]");
  Parser.value("--out", "DIR", "output directory (must exist)", &OutDir);
  Parser.value("--manifest", "FILE",
               "generator manifest (subtree/program lines)", &ManifestPath);
  Parser.value("--template", "LINE",
               "one generator manifest line replicated --count times with"
               " derived per-instance seeds",
               &Template);
  Parser.intValue("--count", "N", "instances to expand from --template",
                  &Count, 1, "a positive integer");
  Parser.intValue("--seed", "S",
                  "base seed for --template expansion (default 1)", &Seed, 0,
                  "a non-negative integer");
  Parser.intValue("--jobs", "N", "worker threads (default 1)", &Jobs, 1,
                  "a positive integer");
  Parser.value("--format", "binary|text",
               "instance file format (default binary)", &Format);
  Parser.value("--manifest-out", "FILE",
               "also write a `file` sweep manifest of the outputs",
               &ManifestOut);
  switch (Parser.parse(Argc, Argv, std::cout, std::cerr)) {
  case ArgParser::Result::Ok:
    break;
  case ArgParser::Result::Help:
    return 0;
  case ArgParser::Result::Error:
    return 2;
  }

  if (OutDir.empty()) {
    std::cerr << "error: --out is required\n";
    return 2;
  }
  if (Format != "binary" && Format != "text") {
    std::cerr << "error: --format must be binary or text\n";
    return 2;
  }
  if (ManifestPath.empty() == Template.empty()) {
    std::cerr << "error: exactly one of --manifest and --template is"
                 " required\n";
    return 2;
  }

  std::vector<SweepEntry> Entries;
  std::string Error;
  if (!Template.empty()) {
    if (Count <= 0) {
      std::cerr << "error: --template needs --count\n";
      return 2;
    }
    if (!expandCorpusTemplate(Template, static_cast<unsigned>(Count),
                              static_cast<uint64_t>(Seed), Entries, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
  } else {
    SweepManifest Manifest;
    if (!loadSweepManifest(ManifestPath, Manifest, &Error)) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
    Entries = std::move(Manifest.Entries);
  }

  CorpusGenOptions Options;
  Options.OutDir = OutDir;
  Options.Jobs = static_cast<unsigned>(Jobs);
  Options.Binary = Format == "binary";
  Options.ManifestOut = ManifestOut;
  CorpusGenReport Report;
  if (!generateCorpus(Entries, Options, &Report, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "wrote " << Report.Written << " instances to " << OutDir
            << "\n";
  return 0;
}
