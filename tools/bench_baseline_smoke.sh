#!/usr/bin/env sh
# Smoke-tests tools/bench_baseline.sh against fake benchmark binaries, so
# `ctest -L tools` locks its failure modes without running real benches:
#
#  1. missing build/binaries  -> clear error, no output file
#  2. stale binaries          -> refused unless RC_BENCH_ALLOW_STALE=1
#  3. happy path              -> merged, validated JSON with both suites
#  4. invalid bench output    -> rejected, no (truncated) output file
#  5. scaling mode            -> bench_scaling only, validated JSON
#
# Usage: tools/bench_baseline_smoke.sh

set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SCRIPT="$ROOT/tools/bench_baseline.sh"
SANDBOX=$(mktemp -d)
trap 'rm -rf "$SANDBOX"' EXIT

FAILURES=0
note_failure() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# Writes a fake bench binary that copies $2 into its --benchmark_out file.
write_fake() {
  PAYLOAD="$2"
  cat > "$1" << EOF
#!/bin/sh
out=
for a in "\$@"; do
  case "\$a" in
    --benchmark_out=*) out=\${a#--benchmark_out=} ;;
  esac
done
cat "$PAYLOAD" > "\$out"
EOF
  chmod +x "$1"
}

BENCH_DIR="$SANDBOX/build/bench"
mkdir -p "$BENCH_DIR"
cat > "$SANDBOX/conservative.payload" << 'EOF'
{"context":{"date":"fake"},"benchmarks":[{"name":"BM_ConservativeRule/64","real_time":1.0}]}
EOF
cat > "$SANDBOX/irc.payload" << 'EOF'
{"context":{"date":"fake"},"benchmarks":[{"name":"BM_IrcThroughput/64","real_time":2.0}]}
EOF

OUT="$SANDBOX/out.json"
LOG="$SANDBOX/log"

# 1. Missing binaries: clear diagnostic, nonzero exit, no output.
if "$SCRIPT" "$SANDBOX/no-such-build" "$OUT" > "$LOG" 2>&1; then
  note_failure "missing build dir was not rejected"
fi
grep -q "not found" "$LOG" || note_failure "missing-binary error not diagnosed: $(cat "$LOG")"
[ ! -e "$OUT" ] || note_failure "missing-binary run left an output file"

write_fake "$BENCH_DIR/bench_conservative" "$SANDBOX/conservative.payload"
write_fake "$BENCH_DIR/bench_irc" "$SANDBOX/irc.payload"

# 2. Stale binaries (older than the repo sources): refused by default,
#    allowed with RC_BENCH_ALLOW_STALE=1.
touch -t 200001010000 "$BENCH_DIR/bench_conservative" "$BENCH_DIR/bench_irc"
if "$SCRIPT" "$SANDBOX/build" "$OUT" > "$LOG" 2>&1; then
  note_failure "stale binaries were not rejected"
fi
grep -q "stale build" "$LOG" || note_failure "staleness not diagnosed: $(cat "$LOG")"
[ ! -e "$OUT" ] || note_failure "stale run left an output file"
if ! RC_BENCH_ALLOW_STALE=1 "$SCRIPT" "$SANDBOX/build" "$OUT" > "$LOG" 2>&1; then
  note_failure "RC_BENCH_ALLOW_STALE=1 did not override the staleness check: $(cat "$LOG")"
fi
rm -f "$OUT"

# 3. Happy path: fresh binaries produce one merged, validated file.
touch "$BENCH_DIR/bench_conservative" "$BENCH_DIR/bench_irc"
if ! "$SCRIPT" "$SANDBOX/build" "$OUT" > "$LOG" 2>&1; then
  note_failure "happy path failed: $(cat "$LOG")"
elif ! jq -e '.benchmarks | length == 2' "$OUT" > /dev/null; then
  note_failure "merged baseline does not hold both suites: $(cat "$OUT")"
elif ! jq -e '[.benchmarks[].name] == ["BM_ConservativeRule/64","BM_IrcThroughput/64"]' \
       "$OUT" > /dev/null; then
  note_failure "merged benchmark names wrong: $(cat "$OUT")"
fi
rm -f "$OUT"

# 4. A bench emitting invalid JSON (crash/truncation stand-in): rejected,
#    and no partial output file survives.
echo "not json {" > "$SANDBOX/conservative.payload"
touch "$BENCH_DIR/bench_conservative" "$BENCH_DIR/bench_irc"
if "$SCRIPT" "$SANDBOX/build" "$OUT" > "$LOG" 2>&1; then
  note_failure "invalid bench JSON was not rejected"
fi
grep -q "not valid JSON" "$LOG" || note_failure "invalid JSON not diagnosed: $(cat "$LOG")"
[ ! -e "$OUT" ] || note_failure "invalid-JSON run left an output file"
for LEFTOVER in "$OUT".tmp.*; do
  [ -e "$LEFTOVER" ] && note_failure "temp file leaked: $LEFTOVER"
done

# 5. Scaling mode: runs bench_scaling alone (never the conservative/irc
#    pair — note scenario 4 left bench_conservative's payload broken) and
#    writes a validated single-suite file.
cat > "$SANDBOX/scaling.payload" << 'EOF'
{"context":{"date":"fake"},"benchmarks":[{"name":"BM_ScaleChordalBuild/65536","real_time":3.0},{"name":"BM_ScaleConservativeBriggs/1048576","real_time":4.0}]}
EOF
write_fake "$BENCH_DIR/bench_scaling" "$SANDBOX/scaling.payload"
if ! "$SCRIPT" scaling "$SANDBOX/build" "$OUT" > "$LOG" 2>&1; then
  note_failure "scaling mode failed: $(cat "$LOG")"
elif ! jq -e '[.benchmarks[].name] == ["BM_ScaleChordalBuild/65536","BM_ScaleConservativeBriggs/1048576"]' \
       "$OUT" > /dev/null; then
  note_failure "scaling baseline names wrong: $(cat "$OUT")"
fi
rm -f "$OUT"

if [ "$FAILURES" -ne 0 ]; then
  echo "bench_baseline_smoke: $FAILURES scenario(s) failed" >&2
  exit 1
fi
echo "bench_baseline_smoke: all scenarios passed"
