//===- tools/rc_gap.cpp - Optimality-gap dashboard ---------------------------===//
//
// Computes per-strategy optimality gaps over the 24-seed golden corpus
// against the exact branch-and-bound baselines (runner/GapReport.h), and
// either writes the byte-stable GAP_trajectory.json or checks a fresh
// computation against a checked-in copy.
//
// Examples:
//   rc_gap --write GAP_trajectory.json --jobs 4
//   rc_gap --check GAP_trajectory.json       # the `gap` ctest guard
//   rc_gap --summary
//
// --check recomputes the dashboard with the parameters stored in no file
// at all — everything that feeds the report (corpus formula, node limits,
// strategy set) is deterministic — verifies the soundness invariants, and
// byte-compares the serialization against the given file, printing the
// first differing line. A heuristic-quality regression is therefore a test
// failure, not a silent drift.
//
//===----------------------------------------------------------------------===//

#include "runner/GapReport.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_gap [--write FILE | --check FILE | --summary] [flags]\n"
        "  --write FILE       compute and write the gap dashboard JSON\n"
        "  --check FILE       recompute and byte-compare against FILE;\n"
        "                     fails on any gap change or invariant"
        " violation\n"
        "  --summary          print an aligned per-strategy gap table\n"
        "  --jobs N           worker threads for the heuristic sweep\n"
        "                     (default 1; the output is identical at any"
        " N)\n"
        "  --node-limit N     base search-node budget per exact baseline\n"
        "                     (default 100000; scaled down on large"
        " instances)\n"
        "  --strategies a[,b] strategy specs (default: every registered\n"
        "                     strategy except exact-bb)\n";
}

static void printSummary(std::ostream &OS, const GapReport &Report) {
  OS << "instance                        greedy_opt  any_opt  proven\n";
  for (const GapInstanceEntry &E : Report.Instances) {
    char Line[128];
    std::snprintf(Line, sizeof(Line), "%-30s %10.0f %8.0f  %s/%s\n",
                  E.Label.c_str(), E.GreedyWeight, E.AnyWeight,
                  E.GreedyProven ? "greedy" : "-",
                  E.AnyProven ? "any" : "-");
    OS << Line;
  }
  OS << "\nstrategy              mean gap vs greedy opt (weight)\n";
  for (size_t S = 0; S < Report.Specs.size(); ++S) {
    double Sum = 0;
    for (const GapInstanceEntry &E : Report.Instances)
      Sum += E.Strategies[S].GapVsGreedy;
    char Line[128];
    std::snprintf(Line, sizeof(Line), "%-20s %10.2f\n",
                  Report.Specs[S].c_str(),
                  Report.Instances.empty()
                      ? 0.0
                      : Sum / static_cast<double>(Report.Instances.size()));
    OS << Line;
  }
}

int main(int Argc, char **Argv) {
  std::string WritePath, CheckPath;
  bool Summary = false;
  unsigned Jobs = 1;
  uint64_t NodeLimit = 100000;
  std::vector<std::string> Specs;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: " << Flag << " requires an argument\n";
        return nullptr;
      }
      return &Args[++I];
    };
    if (Args[I] == "--write") {
      const std::string *V = value("--write");
      if (!V)
        return 2;
      WritePath = *V;
    } else if (Args[I] == "--check") {
      const std::string *V = value("--check");
      if (!V)
        return 2;
      CheckPath = *V;
    } else if (Args[I] == "--summary") {
      Summary = true;
    } else if (Args[I] == "--jobs") {
      const std::string *V = value("--jobs");
      if (!V)
        return 2;
      int N = std::atoi(V->c_str());
      if (N < 1) {
        std::cerr << "error: --jobs expects a positive integer\n";
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (Args[I] == "--node-limit") {
      const std::string *V = value("--node-limit");
      if (!V)
        return 2;
      long long N = std::atoll(V->c_str());
      if (N < 1000) {
        std::cerr << "error: --node-limit expects an integer >= 1000\n";
        return 2;
      }
      NodeLimit = static_cast<uint64_t>(N);
    } else if (Args[I] == "--strategies") {
      const std::string *V = value("--strategies");
      if (!V)
        return 2;
      Specs = splitStrategySpecs(*V);
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag " << Args[I] << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (WritePath.empty() && CheckPath.empty() && !Summary) {
    usage(std::cerr);
    return 2;
  }

  if (Specs.empty())
    Specs = defaultGapSpecs();
  for (const std::string &Spec : Specs) {
    std::string Message;
    if (checkStrategySpec(Spec, &Message) != RunStatus::Ok) {
      std::cerr << "error: " << Message << "\n";
      return 2;
    }
  }

  std::vector<LabeledProblem> Problems = goldenChallengeCorpus();
  GapReport Report = computeGapReport(Problems, Specs, NodeLimit, Jobs);

  std::string Error;
  if (!checkGapInvariants(Report, &Error)) {
    std::cerr << "error: gap invariant violated: " << Error << "\n";
    return 1;
  }

  if (Summary)
    printSummary(std::cout, Report);

  if (!WritePath.empty()) {
    std::ofstream OS(WritePath, std::ios::binary);
    if (!OS) {
      std::cerr << "error: cannot write " << WritePath << "\n";
      return 1;
    }
    writeGapJson(OS, Report);
    std::cout << "gap dashboard written to " << WritePath << "\n";
  }

  if (!CheckPath.empty()) {
    std::ifstream IS(CheckPath, std::ios::binary);
    if (!IS) {
      std::cerr << "error: cannot read " << CheckPath
                << " (regenerate with: rc_gap --write " << CheckPath
                << ")\n";
      return 1;
    }
    std::stringstream Expected;
    Expected << IS.rdbuf();
    std::stringstream Actual;
    writeGapJson(Actual, Report);
    if (Expected.str() != Actual.str()) {
      std::string ELine, ALine;
      unsigned LineNo = 1;
      Expected.seekg(0);
      std::stringstream ActualLines(Actual.str());
      while (true) {
        bool HasE = static_cast<bool>(std::getline(Expected, ELine));
        bool HasA = static_cast<bool>(std::getline(ActualLines, ALine));
        if (!HasE && !HasA)
          break;
        if (!HasE || !HasA || ELine != ALine) {
          std::cerr << "error: gap dashboard drifted from " << CheckPath
                    << " at line " << LineNo << ":\n  checked-in: "
                    << (HasE ? ELine : "<end of file>")
                    << "\n  recomputed: " << (HasA ? ALine : "<end of file>")
                    << "\n";
          break;
        }
        ++LineNo;
      }
      std::cerr << "a quality change must update the checked-in dashboard"
                   " (rc_gap --write) and be justified in the PR\n";
      return 1;
    }
    std::cout << "gap dashboard matches " << CheckPath << " ("
              << Report.Instances.size() << " instances, "
              << Report.Specs.size() << " strategies)\n";
  }
  return 0;
}
