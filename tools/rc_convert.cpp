//===- tools/rc_convert.cpp - Challenge text <-> binary conversion -----------===//
//
// Translates coalescing instances between the challenge text format
// (challenge/ChallengeFormat.h) and the compact binary format
// (challenge/ChallengeBinary.h). The input format is sniffed from the
// content, so conversion direction is chosen by --to.
//
// Examples:
//   rc_convert --to binary dump.txt dump.rcb
//   rc_convert --to text dump.rcb roundtrip.txt
//   rc_convert --to binary --check dump.txt dump.rcb
//
// --check re-reads the written file and compares the canonical binary
// serializations of the two instances byte for byte, failing loudly if the
// round trip lost anything.
//
//===----------------------------------------------------------------------===//

#include "challenge/ChallengeBinary.h"
#include "challenge/ChallengeFormat.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_convert --to text|binary [--check] INPUT OUTPUT\n"
        "  --to FORMAT   output format (input format is auto-detected)\n"
        "  --check       re-read OUTPUT and verify it round-trips INPUT\n";
}

/// The canonical byte rendering used for --check comparisons: the binary
/// serialization normalizes edge order, so two reads of the same instance
/// compare equal however the files ordered their lines.
static std::string canonicalBytes(const CoalescingProblem &P) {
  std::ostringstream OS;
  writeChallengeBinary(OS, P);
  return OS.str();
}

int main(int Argc, char **Argv) {
  std::string To;
  bool Check = false;
  std::vector<std::string> Paths;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--to") {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: --to requires an argument\n";
        return 2;
      }
      To = Args[++I];
    } else if (Args[I] == "--check") {
      Check = true;
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else if (!Args[I].empty() && Args[I][0] == '-') {
      std::cerr << "error: unknown flag " << Args[I] << "\n";
      usage(std::cerr);
      return 2;
    } else {
      Paths.push_back(Args[I]);
    }
  }
  if ((To != "text" && To != "binary") || Paths.size() != 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string &InPath = Paths[0], &OutPath = Paths[1];

  CoalescingProblem P;
  {
    // Zero-copy loader: mmap + content sniffing (text or binary input).
    std::string Error;
    if (!readChallengeFile(InPath, P, &Error)) {
      std::cerr << "error: " << InPath << ": " << Error << "\n";
      return 1;
    }
  }

  {
    std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::cerr << "error: cannot open " << OutPath << " for writing\n";
      return 1;
    }
    if (To == "binary")
      writeChallengeBinary(Out, P);
    else
      writeChallenge(Out, P);
    Out.flush();
    if (!Out) {
      std::cerr << "error: write to " << OutPath << " failed\n";
      return 1;
    }
  }

  if (Check) {
    CoalescingProblem Q;
    std::string Error;
    if (!readChallengeFile(OutPath, Q, &Error)) {
      std::cerr << "error: round-trip read of " << OutPath << " failed"
                << (Error.empty() ? "" : ": " + Error) << "\n";
      return 1;
    }
    if (canonicalBytes(P) != canonicalBytes(Q)) {
      std::cerr << "error: round-trip mismatch between " << InPath << " and "
                << OutPath << "\n";
      return 1;
    }
  }
  return 0;
}
