#!/usr/bin/env sh
# Records the conservative-coalescing perf baseline.
#
# Runs the BM_ConservativeRule / BM_ConservativeLegacy benchmarks (the
# incremental worklist driver and the legacy fixpoint driver under the four
# safety rules) plus the IRC throughput benches, and writes Google Benchmark
# JSON to BENCH_conservative.json at the repository root. The checked-in
# file is the reference for perf review: rerun this script on a quiet
# machine and diff real_time per benchmark; anything beyond noise (~5%)
# needs an explanation in the PR that regresses it. The Legacy/Rule pair at
# the same size also gives a machine-independent speedup ratio.
#
# The script refuses to record a baseline from a stale build (sources newer
# than the benchmark binaries) unless RC_BENCH_ALLOW_STALE=1, requires jq
# (no silent partial output), and only moves validated JSON into place --
# a failing bench run can never leave a truncated baseline behind.
#
# Usage: tools/bench_baseline.sh [build-dir] [output.json]
#   build-dir       defaults to ./build
#   output.json     defaults to ./BENCH_conservative.json

set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
OUT=${2:-"$ROOT/BENCH_conservative.json"}

fail() {
  echo "error: $*" >&2
  exit 1
}

# jq assembles the two bench outputs into one file and validates the result;
# without it the old script silently wrote a partial baseline.
command -v jq > /dev/null 2>&1 || \
  fail "jq not found; it is required to assemble and validate $OUT"

for B in bench_conservative bench_irc; do
  if [ ! -x "$BUILD_DIR/bench/$B" ]; then
    echo "error: $BUILD_DIR/bench/$B not found; build first:" >&2
    echo "  cmake -B \"$BUILD_DIR\" -S \"$ROOT\" && cmake --build \"$BUILD_DIR\" -j" >&2
    exit 1
  fi
done

# A baseline recorded from a binary older than the sources measures the
# wrong code. Override with RC_BENCH_ALLOW_STALE=1 if you know better.
if [ "${RC_BENCH_ALLOW_STALE:-0}" != "1" ]; then
  for B in bench_conservative bench_irc; do
    STALE=$(find "$ROOT/src" "$ROOT/bench" -type f \
              \( -name '*.cpp' -o -name '*.h' \) \
              -newer "$BUILD_DIR/bench/$B" -print -quit)
    if [ -n "$STALE" ]; then
      echo "error: stale build: $STALE is newer than $BUILD_DIR/bench/$B" >&2
      echo "  rebuild first (cmake --build \"$BUILD_DIR\" -j)," >&2
      echo "  or set RC_BENCH_ALLOW_STALE=1 to record anyway" >&2
      exit 1
    fi
  done
fi

TMP=$(mktemp -d)
OUT_TMP="$OUT.tmp.$$"
trap 'rm -rf "$TMP" "$OUT_TMP"' EXIT

"$BUILD_DIR/bench/bench_conservative" \
  --benchmark_filter='BM_Conservative(Rule|Legacy)' \
  --benchmark_format=json \
  --benchmark_out="$TMP/conservative.json" \
  --benchmark_out_format=json

"$BUILD_DIR/bench/bench_irc" \
  --benchmark_filter='BM_IrcThroughput' \
  --benchmark_format=json \
  --benchmark_out="$TMP/irc.json" \
  --benchmark_out_format=json

for F in conservative irc; do
  jq empty "$TMP/$F.json" 2> /dev/null || \
    fail "bench output $TMP/$F.json is not valid JSON (crashed or truncated bench run?)"
done

# One file, one benchmarks array; keep the first context block.
jq -s '.[0] * {benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
  "$TMP/conservative.json" "$TMP/irc.json" > "$OUT_TMP"

jq -e '.benchmarks | length > 0' "$OUT_TMP" > /dev/null || \
  fail "merged baseline has no benchmarks (bad --benchmark_filter?)"

mv "$OUT_TMP" "$OUT"
echo "baseline written to $OUT"
