#!/usr/bin/env sh
# Records the conservative-coalescing perf baseline.
#
# Runs the BM_ConservativeRule / BM_ConservativeLegacy benchmarks (the
# incremental worklist driver and the legacy fixpoint driver under the four
# safety rules) plus the IRC throughput benches, and writes Google Benchmark
# JSON to BENCH_conservative.json at the repository root. The checked-in
# file is the reference for perf review: rerun this script on a quiet
# machine and diff real_time per benchmark; anything beyond noise (~5%)
# needs an explanation in the PR that regresses it. The Legacy/Rule pair at
# the same size also gives a machine-independent speedup ratio.
#
# Usage: tools/bench_baseline.sh [build-dir] [output.json]
#   build-dir       defaults to ./build
#   output.json     defaults to ./BENCH_conservative.json

set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
OUT=${2:-"$ROOT/BENCH_conservative.json"}

for B in bench_conservative bench_irc; do
  if [ ! -x "$BUILD_DIR/bench/$B" ]; then
    echo "error: $BUILD_DIR/bench/$B not found; build first:" >&2
    echo "  cmake -B \"$BUILD_DIR\" -S \"$ROOT\" && cmake --build \"$BUILD_DIR\" -j" >&2
    exit 1
  fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BUILD_DIR/bench/bench_conservative" \
  --benchmark_filter='BM_Conservative(Rule|Legacy)' \
  --benchmark_format=json \
  --benchmark_out="$TMP/conservative.json" \
  --benchmark_out_format=json

"$BUILD_DIR/bench/bench_irc" \
  --benchmark_filter='BM_IrcThroughput' \
  --benchmark_format=json \
  --benchmark_out="$TMP/irc.json" \
  --benchmark_out_format=json

if command -v jq > /dev/null 2>&1; then
  # One file, one benchmarks array; keep the first context block.
  jq -s '.[0] * {benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
    "$TMP/conservative.json" "$TMP/irc.json" > "$OUT"
else
  echo "warning: jq not found; writing conservative benches only" >&2
  cp "$TMP/conservative.json" "$OUT"
fi

echo "baseline written to $OUT"
