#!/usr/bin/env sh
# Records the checked-in perf baselines.
#
# Default mode runs the BM_ConservativeRule / BM_ConservativeLegacy
# benchmarks (the incremental worklist driver and the legacy fixpoint
# driver under the four safety rules) plus the IRC throughput benches, and
# writes Google Benchmark JSON to BENCH_conservative.json at the repository
# root. The checked-in file is the reference for perf review: rerun this
# script on a quiet machine and diff real_time per benchmark; anything
# beyond noise (~5%) needs an explanation in the PR that regresses it. The
# Legacy/Rule pair at the same size also gives a machine-independent
# speedup ratio.
#
# "scaling" mode runs the BM_Scale* group of bench_scaling (graph
# construction and the scalable heuristics at 65536 and 1048576 vertices on
# the arena-backed sparse representation) and writes BENCH_scaling.json.
# Those runs are single-iteration scaling records; judge them by the
# time-per-edge trend across the two sizes, not by microbenchmark noise.
#
# Both modes refuse to record a baseline from a stale build (sources newer
# than the benchmark binaries) unless RC_BENCH_ALLOW_STALE=1, refuse
# non-release CMake build types (Debug baselines measure the wrong code;
# override with RC_BENCH_ALLOW_DEBUG=1), require jq (no silent partial
# output), and only move validated JSON into place -- a failing bench run
# can never leave a truncated baseline behind. The CMake build type the
# run used is recorded as .context.rc_cmake_build_type in the output.
# (Google Benchmark's own library_build_type says "debug" even in release
# builds here, because the project strips -DNDEBUG to keep the paper's
# invariant assertions on — read rc_cmake_build_type instead.)
#
# Usage: tools/bench_baseline.sh [scaling] [build-dir] [output.json]
#   scaling         record the BM_Scale* baseline instead of the default
#   build-dir       defaults to ./build
#   output.json     defaults to ./BENCH_conservative.json
#                   (./BENCH_scaling.json in scaling mode)

set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)

MODE=conservative
if [ "${1:-}" = "scaling" ]; then
  MODE=scaling
  shift
fi

BUILD_DIR=${1:-"$ROOT/build"}
case "$MODE" in
  conservative)
    OUT=${2:-"$ROOT/BENCH_conservative.json"}
    BENCHES="bench_conservative bench_irc"
    ;;
  scaling)
    OUT=${2:-"$ROOT/BENCH_scaling.json"}
    BENCHES="bench_scaling"
    ;;
esac

fail() {
  echo "error: $*" >&2
  exit 1
}

# jq assembles the bench outputs into one file and validates the result;
# without it the old script silently wrote a partial baseline.
command -v jq > /dev/null 2>&1 || \
  fail "jq not found; it is required to assemble and validate $OUT"

for B in $BENCHES; do
  if [ ! -x "$BUILD_DIR/bench/$B" ]; then
    echo "error: $BUILD_DIR/bench/$B not found; build first:" >&2
    echo "  cmake -B \"$BUILD_DIR\" -S \"$ROOT\" && cmake --build \"$BUILD_DIR\" -j" >&2
    exit 1
  fi
done

# Detect the CMake build type. An empty CMAKE_BUILD_TYPE means the
# project default (RelWithDebInfo, see the top-level CMakeLists.txt).
BUILD_TYPE=""
if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
  BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                 "$BUILD_DIR/CMakeCache.txt" | head -n 1)
fi
[ -n "$BUILD_TYPE" ] || BUILD_TYPE=RelWithDebInfo

case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${RC_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
      echo "error: build type is $BUILD_TYPE; baselines must come from a" >&2
      echo "  Release or RelWithDebInfo build. Reconfigure with" >&2
      echo "  cmake -B \"$BUILD_DIR\" -DCMAKE_BUILD_TYPE=RelWithDebInfo," >&2
      echo "  or set RC_BENCH_ALLOW_DEBUG=1 to record anyway" >&2
      exit 1
    fi
    ;;
esac

# A baseline recorded from a binary older than the sources measures the
# wrong code. Override with RC_BENCH_ALLOW_STALE=1 if you know better.
if [ "${RC_BENCH_ALLOW_STALE:-0}" != "1" ]; then
  for B in $BENCHES; do
    STALE=$(find "$ROOT/src" "$ROOT/bench" -type f \
              \( -name '*.cpp' -o -name '*.h' \) \
              -newer "$BUILD_DIR/bench/$B" -print -quit)
    if [ -n "$STALE" ]; then
      echo "error: stale build: $STALE is newer than $BUILD_DIR/bench/$B" >&2
      echo "  rebuild first (cmake --build \"$BUILD_DIR\" -j)," >&2
      echo "  or set RC_BENCH_ALLOW_STALE=1 to record anyway" >&2
      exit 1
    fi
  done
fi

TMP=$(mktemp -d)
OUT_TMP="$OUT.tmp.$$"
trap 'rm -rf "$TMP" "$OUT_TMP"' EXIT

if [ "$MODE" = "conservative" ]; then
  "$BUILD_DIR/bench/bench_conservative" \
    --benchmark_filter='BM_Conservative(Rule|Legacy)' \
    --benchmark_format=json \
    --benchmark_out="$TMP/conservative.json" \
    --benchmark_out_format=json

  "$BUILD_DIR/bench/bench_irc" \
    --benchmark_filter='BM_IrcThroughput' \
    --benchmark_format=json \
    --benchmark_out="$TMP/irc.json" \
    --benchmark_out_format=json

  for F in conservative irc; do
    jq empty "$TMP/$F.json" 2> /dev/null || \
      fail "bench output $TMP/$F.json is not valid JSON (crashed or truncated bench run?)"
  done

  # One file, one benchmarks array; keep the first context block.
  jq -s '.[0] * {benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
    "$TMP/conservative.json" "$TMP/irc.json" > "$OUT_TMP"
else
  "$BUILD_DIR/bench/bench_scaling" \
    --benchmark_filter='BM_Scale' \
    --benchmark_format=json \
    --benchmark_out="$TMP/scaling.json" \
    --benchmark_out_format=json

  jq empty "$TMP/scaling.json" 2> /dev/null || \
    fail "bench output $TMP/scaling.json is not valid JSON (crashed or truncated bench run?)"

  jq '.' "$TMP/scaling.json" > "$OUT_TMP"
fi

jq -e '.benchmarks | length > 0' "$OUT_TMP" > /dev/null || \
  fail "baseline has no benchmarks (bad --benchmark_filter?)"

# Stamp the build type the run actually used into the context block.
jq --arg bt "$BUILD_TYPE" '.context.rc_cmake_build_type = $bt' \
  "$OUT_TMP" > "$OUT_TMP.typed" && mv "$OUT_TMP.typed" "$OUT_TMP"

mv "$OUT_TMP" "$OUT"
echo "baseline written to $OUT"
