//===- tools/rc_serve.cpp - Coalescing-as-a-service daemon -------------------===//
//
// The persistent coalescing daemon. Two transports over the same frame
// protocol (service/WireProtocol.h):
//
//  - stdio (default): one connection on stdin/stdout — a pipe, an
//    inetd-style wrapper, or an interactive test harness.
//  - --listen tcp:PORT|unix:PATH: a real socket daemon; every accepted
//    connection runs its own frame loop against one shared service, so
//    the worker pool, admission bound, and result cache are shared
//    across clients (client 2 gets client 1's cache hits).
//
// All policy (validation, result cache, admission control, deadlines,
// graceful shutdown) lives in service/Service.h and service/Listener.h;
// this driver only parses flags, wires the transport, and reports stats.
//
// Examples:
//   rc_request --gen "subtree seed=3 n=96 slack=0" --shutdown drain |
//     rc_serve --jobs 4 | rc_request --decode
//   rc_serve --listen unix:/tmp/rc.sock --jobs 8 --cache 1024 --stats
//
// Exits 0 on a clean ending (Shutdown frame, EOF, or SIGINT-triggered
// drain), 1 when the transport failed (poisoned stdio stream, accept
// failure).
//
//===----------------------------------------------------------------------===//

#include "service/Listener.h"
#include "service/Service.h"
#include "service/ServiceLoop.h"
#include "support/ArgParser.h"

#include <cstring>
#include <iostream>
#include <string>

#include <csignal>

using namespace rc;

namespace {

/// The SIGINT/SIGTERM target. requestStop() is one relaxed atomic store,
/// so calling it from the handler is async-signal-safe.
Listener *SignalledListener = nullptr;

extern "C" void handleStopSignal(int) {
  if (SignalledListener)
    SignalledListener->requestStop();
}

void installStopHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = handleStopSignal;
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
}

void printStats(const CoalescingService &Service, const Listener *L) {
  ServiceStats S = Service.stats();
  std::cerr << "rc_serve: requests=" << S.Requests
            << " completed=" << S.Completed << " timed_out=" << S.TimedOut
            << " errors=" << S.Errors << " rejected=" << S.Rejected
            << " bad_requests=" << S.BadRequests
            << " cache_hits=" << S.CacheHits
            << " cache_misses=" << S.CacheMisses;
  if (L) {
    Listener::Stats LS = L->stats();
    std::cerr << " connections=" << LS.Accepted << " refused=" << LS.Refused
              << " poisoned=" << LS.Poisoned;
  }
  std::cerr << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  ServiceConfig Config;
  ServiceLoopOptions LoopOptions;
  ListenerConfig ListenConfig;
  bool PrintFinalStats = false;
  std::string Listen;
  long long Jobs = 1, QueueLimit = 16, Cache = 256;
  long long MaxPayload = LoopOptions.MaxPayloadBytes;
  long long MaxConnections = ListenConfig.MaxConnections;
  bool NoTiming = false;

  ArgParser Parser("rc_serve", "< requests > responses");
  Parser.intValue("--jobs", "N", "worker threads (default 1)", &Jobs, 1,
                  "a positive integer");
  Parser.intValue("--queue-limit", "N",
                  "max requests queued or running before new ones are"
                  " answered busy (default 16)",
                  &QueueLimit, 1, "a positive integer");
  Parser.intValue("--cache", "N",
                  "result-cache capacity in entries; 0 disables"
                  " (default 256)",
                  &Cache, 0, "a non-negative integer");
  Parser.intValue("--max-payload", "N",
                  "reject frames with payloads larger than N bytes"
                  " (default 8 MiB)",
                  &MaxPayload, 1, "a positive byte count");
  Parser.value("--listen", "EP",
               "serve a socket endpoint (tcp:PORT or unix:PATH) instead"
               " of stdio",
               &Listen);
  Parser.intValue("--max-connections", "N",
                  "with --listen: live-connection cap; extras are answered"
                  " busy (default 32)",
                  &MaxConnections, 1, "a positive integer");
  Parser.flag("--no-timing",
              "zero wall-clock fields in responses (byte-stable across"
              " runs)",
              &NoTiming);
  Parser.flag("--stats", "print final service stats to stderr",
              &PrintFinalStats);
  switch (Parser.parse(Argc, Argv, std::cout, std::cerr)) {
  case ArgParser::Result::Ok:
    break;
  case ArgParser::Result::Help:
    return 0;
  case ArgParser::Result::Error:
    return 2;
  }

  Config.Workers = static_cast<unsigned>(Jobs);
  Config.QueueLimit = static_cast<unsigned>(QueueLimit);
  Config.CacheCapacity = static_cast<size_t>(Cache);
  Config.IncludeTiming = !NoTiming;
  LoopOptions.MaxPayloadBytes = static_cast<uint32_t>(MaxPayload);

  if (!Listen.empty()) {
    std::string Error;
    if (!parseEndpoint(Listen, ListenConfig.Ep, &Error)) {
      std::cerr << "error: --listen: " << Error << "\n";
      return 2;
    }
    ListenConfig.MaxConnections = static_cast<unsigned>(MaxConnections);
    ListenConfig.MaxPayloadBytes = static_cast<uint32_t>(MaxPayload);

    CoalescingService Service(Config);
    Listener L(Service, ListenConfig);
    if (!L.open(&Error)) {
      std::cerr << "rc_serve: " << Error << "\n";
      return 1;
    }
    // Announce the endpoint actually bound — with tcp:0 this is how a
    // script learns the OS-assigned port.
    std::cerr << "rc_serve: listening on " << endpointName(L.boundEndpoint())
              << "\n";

    SignalledListener = &L;
    installStopHandlers();
    bool Ok = L.run(&Error);
    SignalledListener = nullptr;

    if (PrintFinalStats)
      printStats(Service, &L);
    if (!Ok) {
      std::cerr << "rc_serve: " << Error << "\n";
      return 1;
    }
    return 0;
  }

  CoalescingService Service(Config);
  std::string Error;
  bool Clean =
      runServiceLoop(std::cin, std::cout, Service, LoopOptions, &Error);

  if (PrintFinalStats)
    printStats(Service, nullptr);
  if (!Clean) {
    std::cerr << "rc_serve: protocol error: " << Error << "\n";
    return 1;
  }
  return 0;
}
