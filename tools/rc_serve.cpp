//===- tools/rc_serve.cpp - Coalescing-as-a-service daemon -------------------===//
//
// The persistent coalescing daemon: speaks the length-prefixed frame
// protocol of service/WireProtocol.h over stdin/stdout, so the same binary
// serves a pipe, an inetd-style socket wrapper, or an interactive test
// harness. All policy (validation, result cache, admission control,
// deadlines, graceful shutdown) lives in service/Service.h; this driver
// only parses flags and runs the transport loop.
//
// Examples:
//   rc_request --gen "subtree seed=3 n=96 slack=0" --shutdown drain |
//     rc_serve --jobs 4 | rc_request --decode
//   rc_serve --jobs 8 --queue-limit 64 --cache 1024 --stats < reqs > resps
//
// Exits 0 on a clean ending (Shutdown frame or EOF), 1 when the input
// stream was poisoned by a malformed frame.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "service/ServiceLoop.h"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_serve [flags] < requests > responses\n"
        "  --jobs N          worker threads (default 1)\n"
        "  --queue-limit N   max requests queued or running before new"
        " ones are answered busy (default 16)\n"
        "  --cache N         result-cache capacity in entries; 0 disables"
        " (default 256)\n"
        "  --max-payload N   reject frames with payloads larger than N"
        " bytes (default 8 MiB)\n"
        "  --no-timing       zero wall-clock fields in responses"
        " (byte-stable across runs)\n"
        "  --stats           print final service stats to stderr\n";
}

int main(int Argc, char **Argv) {
  ServiceConfig Config;
  ServiceLoopOptions LoopOptions;
  bool PrintStats = false;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: " << Flag << " requires an argument\n";
        return nullptr;
      }
      return &Args[++I];
    };
    if (Args[I] == "--jobs") {
      const std::string *V = value("--jobs");
      if (!V)
        return 2;
      int N = std::atoi(V->c_str());
      if (N < 1) {
        std::cerr << "error: --jobs expects a positive integer\n";
        return 2;
      }
      Config.Workers = static_cast<unsigned>(N);
    } else if (Args[I] == "--queue-limit") {
      const std::string *V = value("--queue-limit");
      if (!V)
        return 2;
      int N = std::atoi(V->c_str());
      if (N < 1) {
        std::cerr << "error: --queue-limit expects a positive integer\n";
        return 2;
      }
      Config.QueueLimit = static_cast<unsigned>(N);
    } else if (Args[I] == "--cache") {
      const std::string *V = value("--cache");
      if (!V)
        return 2;
      long N = std::atol(V->c_str());
      if (N < 0) {
        std::cerr << "error: --cache expects a non-negative integer\n";
        return 2;
      }
      Config.CacheCapacity = static_cast<size_t>(N);
    } else if (Args[I] == "--max-payload") {
      const std::string *V = value("--max-payload");
      if (!V)
        return 2;
      long long N = std::atoll(V->c_str());
      if (N < 1) {
        std::cerr << "error: --max-payload expects a positive byte count\n";
        return 2;
      }
      LoopOptions.MaxPayloadBytes = static_cast<uint32_t>(N);
    } else if (Args[I] == "--no-timing") {
      Config.IncludeTiming = false;
    } else if (Args[I] == "--stats") {
      PrintStats = true;
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag '" << Args[I] << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  CoalescingService Service(Config);
  std::string Error;
  bool Clean =
      runServiceLoop(std::cin, std::cout, Service, LoopOptions, &Error);

  if (PrintStats) {
    ServiceStats S = Service.stats();
    std::cerr << "rc_serve: requests=" << S.Requests
              << " completed=" << S.Completed << " timed_out=" << S.TimedOut
              << " errors=" << S.Errors << " rejected=" << S.Rejected
              << " bad_requests=" << S.BadRequests
              << " cache_hits=" << S.CacheHits
              << " cache_misses=" << S.CacheMisses << "\n";
  }
  if (!Clean) {
    std::cerr << "rc_serve: protocol error: " << Error << "\n";
    return 1;
  }
  return 0;
}
