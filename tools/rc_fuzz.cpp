//===- tools/rc_fuzz.cpp - Property-based fuzzing driver ---------------------===//
//
// Standalone driver over testing/PropertyCheck: runs every registered paper
// invariant (Theorem 1 chordality, out-of-SSA semantics, coalescer
// soundness, exact differential, WorkGraph incremental) for a number of
// seeded trials, minimizes and dumps reproducers for failures, and replays
// checked-in reproducers as a regression suite.
//
// Examples:
//   rc_fuzz --trials 500 --seed 42
//   rc_fuzz --property exact-differential --trials 2000 --max-size 12
//   rc_fuzz --replay tests/corpus
//   rc_fuzz --replay exact-differential-seed42-trial17.repro
//
//===----------------------------------------------------------------------===//

#include "challenge/StrategyRegistry.h"
#include "testing/FuzzConfig.h"
#include "testing/PropertyCheck.h"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

using namespace rc;
using namespace rc::testing;

static int replay(const std::string &Path) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code EC;
  if (fs::is_directory(Path, EC)) {
    for (const fs::directory_entry &Entry : fs::directory_iterator(Path))
      if (Entry.path().extension() == ".repro")
        Files.push_back(Entry.path().string());
    std::sort(Files.begin(), Files.end());
    if (Files.empty()) {
      std::cerr << "error: no .repro files in " << Path << "\n";
      return 1;
    }
  } else {
    Files.push_back(Path);
  }

  unsigned Failures = 0;
  for (const std::string &File : Files) {
    std::string Error;
    if (!replayReproducer(File, std::cout, &Error)) {
      std::cout << "FAIL " << File << ": " << Error << "\n";
      ++Failures;
    }
  }
  std::cout << Files.size() << " reproducers replayed, " << Failures
            << " failures\n";
  return Failures ? 1 : 0;
}

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  std::string Error;
  if (!parseFuzzArgs(Argc, Argv, Config, &Error)) {
    std::cerr << "error: " << Error << "\n" << fuzzUsage();
    return 2;
  }

  for (const std::string &Name : Config.Strategies) {
    if (!StrategyRegistry::instance().lookup(Name)) {
      std::string Names;
      for (const std::string &Registered :
           StrategyRegistry::instance().names())
        Names += (Names.empty() ? "" : ", ") + Registered;
      std::cerr << "error: unknown strategy '" << Name
                << "' (registered: " << Names << ")\n";
      return 2;
    }
  }

  if (Config.List) {
    for (const Property &P : allProperties())
      std::cout << P.Name << "\n    " << P.Summary << "\n";
    return 0;
  }

  if (!Config.ReplayPath.empty())
    return replay(Config.ReplayPath);

  std::cout << "rc_fuzz: seed " << Config.Seed << ", " << Config.Trials
            << " trials/property, max size " << Config.MaxSize << "\n";
  FuzzReport Report = runFuzz(Config, std::cout);
  if (Report.allPassed()) {
    std::cout << "all properties passed\n";
    return 0;
  }
  std::cout << "FUZZING FAILED\n";
  return 1;
}
