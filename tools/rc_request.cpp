//===- tools/rc_request.cpp - Client driver for rc_serve ---------------------===//
//
// The client half of the service protocol, for scripts and smoke tests.
// Three modes:
//
//  - emit (default): writes Request frames to stdout for every
//    (instance x spec) pair, optionally followed by one Shutdown frame.
//    Instances come from dumped challenge files (--instance) and/or
//    manifest lines (--gen, the rc_sweep grammar).
//  - --connect EP: dials a live rc_serve --listen daemon through
//    rc::Client, pipelines the same request list over the socket, and
//    prints one response payload per line — byte-identical to what the
//    stdio pipe path decodes, so the two transports are diffable.
//  - --decode: reads Response frames from stdin, prints one payload per
//    line (the payloads are JSON objects, so the output is JSONL), and
//    exits non-zero on any error status, a malformed stream, or a frame
//    count mismatch (--expect).
//
// Examples:
//   rc_request --gen "subtree seed=3 n=96 slack=0" --strategies briggs,irc
//     --deadline-ms 250 --shutdown drain | rc_serve | rc_request --decode
//   rc_request --connect unix:/tmp/rc.sock --instance dump.txt --spec irc
//
//===----------------------------------------------------------------------===//

#include "challenge/ChallengeBinary.h"
#include "challenge/StrategyRunner.h"
#include "runner/SweepManifest.h"
#include "service/Client.h"
#include "service/WireProtocol.h"
#include "support/ArgParser.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace rc;

static int decode(long long Expect) {
  long long Count = 0;
  bool SawError = false;
  for (;;) {
    Frame F;
    std::string Error;
    FrameReadStatus S = readFrame(std::cin, F, kDefaultMaxPayloadBytes,
                                  &Error);
    if (S == FrameReadStatus::Eof)
      break;
    if (S != FrameReadStatus::Ok) {
      std::cerr << "rc_request: malformed response stream: " << Error
                << "\n";
      return 1;
    }
    if (F.Type != FrameType::Response) {
      std::cerr << "rc_request: unexpected frame type in response stream\n";
      return 1;
    }
    std::cout << F.Payload << "\n";
    ++Count;
    ReplyStatus Status;
    if (!extractResponseStatus(F.Payload, Status)) {
      std::cerr << "rc_request: response payload without a valid status"
                   " field\n";
      return 1;
    }
    // ok / timed-out carry results; shutting-down is the ack. Everything
    // else means a request was refused.
    if (!replyStatusHasResult(Status) &&
        Status != ReplyStatus::ShuttingDown) {
      std::cerr << "rc_request: response " << Count << " has status '"
                << replyStatusName(Status) << "'\n";
      SawError = true;
    }
  }
  if (Expect >= 0 && Count != Expect) {
    std::cerr << "rc_request: expected " << Expect << " responses, got "
              << Count << "\n";
    return 1;
  }
  return SawError ? 1 : 0;
}

/// Runs the request list against a live daemon and prints the payloads as
/// the --decode JSONL a pipe-path run would produce.
static int runConnected(const Endpoint &Ep,
                        const std::vector<LabeledProblem> &Instances,
                        const std::vector<std::string> &Specs,
                        int64_t DeadlineMillis, long long Repeat,
                        bool Shutdown, const std::string &ShutdownMode) {
  Expected<Client> C = Client::connect(Ep);
  if (!C) {
    std::cerr << "rc_request: " << C.error().Message << "\n";
    return 1;
  }

  std::vector<Client::Request> Requests;
  for (long long R = 0; R < Repeat; ++R)
    for (const LabeledProblem &LP : Instances)
      for (const std::string &Spec : Specs) {
        Client::Request Req;
        Req.Problem = &LP.Problem;
        Req.Spec = Spec;
        Req.DeadlineMillis = DeadlineMillis;
        Requests.push_back(Req);
      }

  bool SawError = false;
  size_t Index = 0;
  for (Expected<ClientReply> &Reply : C->submitAll(Requests)) {
    ++Index;
    if (Reply) {
      std::cout << Reply->Payload << "\n";
      continue;
    }
    const ClientError &E = Reply.error();
    if (E.Kind == ClientErrorKind::TimedOut) {
      // A deadline expiry still carries the flagged partial result — the
      // pipe path prints those too and stays healthy.
      std::cout << E.Partial << "\n";
      continue;
    }
    std::cerr << "rc_request: request " << Index << ": "
              << clientErrorKindName(E.Kind)
              << (E.Message.empty() ? "" : ": " + E.Message) << "\n";
    SawError = true;
    if (!C->connected())
      return 1;
  }

  if (Shutdown && C->connected()) {
    Expected<ClientReply> Ack = C->shutdownServer(
        ShutdownMode == "now" ? ShutdownMode::Now : ShutdownMode::Drain);
    if (!Ack) {
      std::cerr << "rc_request: shutdown: " << Ack.error().Message << "\n";
      return 1;
    }
    std::cout << Ack->Payload << "\n";
  }
  return SawError ? 1 : 0;
}

int main(int Argc, char **Argv) {
  std::vector<LabeledProblem> Instances;
  std::vector<std::string> Specs;
  long long DeadlineMillis = 0;
  long long Repeat = 1;
  long long Expect = -1;
  std::string ShutdownMode;
  std::string Connect;
  bool Decode = false;
  bool Shutdown = false;

  ArgParser Parser("rc_request", "> frames (emit) | --decode < frames");
  Parser.each("--instance", "FILE",
              "add an instance from a dumped challenge file (repeatable)",
              [&](const std::string &V, std::string &Error) {
                // Zero-copy loader: mmap + content sniffing, so `.rcb`
                // instances skip the stream parse entirely.
                LabeledProblem LP;
                LP.Label = V;
                std::string ReadError;
                if (!readChallengeFile(V, LP.Problem, &ReadError)) {
                  Error = V + ": " + ReadError;
                  return false;
                }
                Instances.push_back(std::move(LP));
                return true;
              });
  Parser.each("--gen", "LINE",
              "add instances from a manifest line, e.g. 'subtree seed=3"
              " n=96 slack=0' (repeatable)",
              [&](const std::string &V, std::string &Error) {
                std::istringstream In(V);
                SweepManifest Manifest;
                std::string GenError;
                if (!parseSweepManifest(In, Manifest, &GenError) ||
                    !materializeSweep(Manifest, Instances, &GenError)) {
                  Error = "--gen: " + GenError;
                  return false;
                }
                return true;
              });
  Parser.each("--spec", "SPEC", "strategy spec (default briggs+george)",
              [&](const std::string &V, std::string &) {
                Specs.push_back(V);
                return true;
              });
  Parser.each("--strategies", "a[,b]",
              "several specs; one request per instance x spec",
              [&](const std::string &V, std::string &) {
                for (const std::string &S : splitStrategySpecs(V))
                  Specs.push_back(S);
                return true;
              });
  Parser.intValue("--deadline-ms", "T", "per-request deadline (default"
                                        " none)",
                  &DeadlineMillis, 1, "a positive integer");
  Parser.intValue("--repeat", "N", "emit the request list N times"
                                   " (default 1)",
                  &Repeat, 1, "a positive integer");
  Parser.each("--shutdown", "MODE",
              "append a shutdown frame: drain | now",
              [&](const std::string &V, std::string &Error) {
                if (V != "drain" && V != "now") {
                  Error = "--shutdown expects 'drain' or 'now'";
                  return false;
                }
                Shutdown = true;
                ShutdownMode = V;
                return true;
              });
  Parser.value("--connect", "EP",
               "submit over a socket to a live rc_serve --listen daemon"
               " (tcp:PORT or unix:PATH)",
               &Connect);
  Parser.flag("--decode", "decode response frames from stdin", &Decode);
  Parser.intValue("--expect", "N",
                  "with --decode: require exactly N responses", &Expect, 0,
                  "a non-negative integer");
  switch (Parser.parse(Argc, Argv, std::cout, std::cerr)) {
  case ArgParser::Result::Ok:
    break;
  case ArgParser::Result::Help:
    return 0;
  case ArgParser::Result::Error:
    return 2;
  }

  if (Decode)
    return decode(Expect);

  if (Instances.empty() && !Shutdown) {
    std::cerr << "error: nothing to emit (need --instance, --gen, or"
                 " --shutdown)\n";
    Parser.usage(std::cerr);
    return 2;
  }
  if (Specs.empty())
    Specs.push_back("briggs+george");

  if (!Connect.empty()) {
    Endpoint Ep;
    std::string Error;
    if (!parseEndpoint(Connect, Ep, &Error)) {
      std::cerr << "error: --connect: " << Error << "\n";
      return 2;
    }
    return runConnected(Ep, Instances, Specs, DeadlineMillis, Repeat,
                        Shutdown, ShutdownMode);
  }

  for (long long R = 0; R < Repeat; ++R)
    for (const LabeledProblem &LP : Instances)
      for (const std::string &Spec : Specs)
        writeFrame(std::cout, FrameType::Request,
                   buildRequestPayload(LP.Problem, Spec, DeadlineMillis));
  if (Shutdown)
    writeFrame(std::cout, FrameType::Shutdown, ShutdownMode);
  std::cout.flush();
  return 0;
}
