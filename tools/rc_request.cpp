//===- tools/rc_request.cpp - Frame encoder/decoder for rc_serve -------------===//
//
// The client half of the service protocol, for scripts and smoke tests.
// Two modes:
//
//  - emit (default): writes Request frames to stdout for every
//    (instance x spec) pair, optionally followed by one Shutdown frame.
//    Instances come from dumped challenge files (--instance) and/or
//    manifest lines (--gen, the rc_sweep grammar).
//  - --decode: reads Response frames from stdin, prints one payload per
//    line (the payloads are JSON objects, so the output is JSONL), and
//    exits non-zero on any error status, a malformed stream, or a frame
//    count mismatch (--expect).
//
// Examples:
//   rc_request --gen "subtree seed=3 n=96 slack=0" --strategies briggs,irc
//     --deadline-ms 250 --shutdown drain | rc_serve | rc_request --decode
//   rc_request --instance dump.txt --spec optimistic --repeat 3 > reqs.bin
//
//===----------------------------------------------------------------------===//

#include "challenge/ChallengeBinary.h"
#include "challenge/StrategyRunner.h"
#include "runner/SweepManifest.h"
#include "service/WireProtocol.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_request [flags] > frames        (emit mode)\n"
        "       rc_request --decode [--expect N] < frames\n"
        "  --instance FILE    add an instance from a dumped challenge"
        " file (repeatable)\n"
        "  --gen LINE         add instances from a manifest line, e.g.\n"
        "                     'subtree seed=3 n=96 slack=0' (repeatable)\n"
        "  --spec SPEC        strategy spec (default briggs+george)\n"
        "  --strategies a[,b] several specs; one request per instance x"
        " spec\n"
        "  --deadline-ms T    per-request deadline (default none)\n"
        "  --repeat N         emit the request list N times (default 1)\n"
        "  --shutdown MODE    append a shutdown frame: drain | now\n"
        "  --decode           decode response frames from stdin\n"
        "  --expect N         with --decode: require exactly N responses\n";
}

static int decode(long long Expect) {
  long long Count = 0;
  bool SawError = false;
  for (;;) {
    Frame F;
    std::string Error;
    FrameReadStatus S = readFrame(std::cin, F, kDefaultMaxPayloadBytes,
                                  &Error);
    if (S == FrameReadStatus::Eof)
      break;
    if (S != FrameReadStatus::Ok) {
      std::cerr << "rc_request: malformed response stream: " << Error
                << "\n";
      return 1;
    }
    if (F.Type != FrameType::Response) {
      std::cerr << "rc_request: unexpected frame type in response stream\n";
      return 1;
    }
    std::cout << F.Payload << "\n";
    ++Count;
    std::string Status;
    if (!extractResponseStatus(F.Payload, Status)) {
      std::cerr << "rc_request: response payload without a status field\n";
      return 1;
    }
    // ok / timed-out carry results; shutting-down is the ack. Everything
    // else means a request was refused.
    if (Status != "ok" && Status != "timed-out" &&
        Status != "shutting-down") {
      std::cerr << "rc_request: response " << Count << " has status '"
                << Status << "'\n";
      SawError = true;
    }
  }
  if (Expect >= 0 && Count != Expect) {
    std::cerr << "rc_request: expected " << Expect << " responses, got "
              << Count << "\n";
    return 1;
  }
  return SawError ? 1 : 0;
}

int main(int Argc, char **Argv) {
  std::vector<LabeledProblem> Instances;
  std::vector<std::string> Specs;
  int64_t DeadlineMillis = 0;
  long long Repeat = 1;
  long long Expect = -1;
  std::string ShutdownMode;
  bool Decode = false;
  bool Shutdown = false;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: " << Flag << " requires an argument\n";
        return nullptr;
      }
      return &Args[++I];
    };
    if (Args[I] == "--instance") {
      const std::string *V = value("--instance");
      if (!V)
        return 2;
      // Binary mode so the text/binary content sniffing sees raw bytes.
      std::ifstream In(*V, std::ios::binary);
      if (!In) {
        std::cerr << "error: cannot open instance file '" << *V << "'\n";
        return 2;
      }
      LabeledProblem LP;
      LP.Label = *V;
      std::string Error;
      if (!readChallengeAuto(In, LP.Problem, &Error)) {
        std::cerr << "error: " << *V << ": " << Error << "\n";
        return 2;
      }
      Instances.push_back(std::move(LP));
    } else if (Args[I] == "--gen") {
      const std::string *V = value("--gen");
      if (!V)
        return 2;
      std::istringstream In(*V);
      SweepManifest Manifest;
      std::string Error;
      if (!parseSweepManifest(In, Manifest, &Error) ||
          !materializeSweep(Manifest, Instances, &Error)) {
        std::cerr << "error: --gen: " << Error << "\n";
        return 2;
      }
    } else if (Args[I] == "--spec") {
      const std::string *V = value("--spec");
      if (!V)
        return 2;
      Specs.push_back(*V);
    } else if (Args[I] == "--strategies") {
      const std::string *V = value("--strategies");
      if (!V)
        return 2;
      for (const std::string &S : splitStrategySpecs(*V))
        Specs.push_back(S);
    } else if (Args[I] == "--deadline-ms") {
      const std::string *V = value("--deadline-ms");
      if (!V)
        return 2;
      DeadlineMillis = std::atoll(V->c_str());
      if (DeadlineMillis <= 0) {
        std::cerr << "error: --deadline-ms expects a positive integer\n";
        return 2;
      }
    } else if (Args[I] == "--repeat") {
      const std::string *V = value("--repeat");
      if (!V)
        return 2;
      Repeat = std::atoll(V->c_str());
      if (Repeat < 1) {
        std::cerr << "error: --repeat expects a positive integer\n";
        return 2;
      }
    } else if (Args[I] == "--shutdown") {
      const std::string *V = value("--shutdown");
      if (!V)
        return 2;
      if (*V != "drain" && *V != "now") {
        std::cerr << "error: --shutdown expects 'drain' or 'now'\n";
        return 2;
      }
      Shutdown = true;
      ShutdownMode = *V;
    } else if (Args[I] == "--decode") {
      Decode = true;
    } else if (Args[I] == "--expect") {
      const std::string *V = value("--expect");
      if (!V)
        return 2;
      Expect = std::atoll(V->c_str());
      if (Expect < 0) {
        std::cerr << "error: --expect expects a non-negative integer\n";
        return 2;
      }
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag '" << Args[I] << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (Decode)
    return decode(Expect);

  if (Instances.empty() && !Shutdown) {
    std::cerr << "error: nothing to emit (need --instance, --gen, or"
                 " --shutdown)\n";
    usage(std::cerr);
    return 2;
  }
  if (Specs.empty())
    Specs.push_back("briggs+george");

  for (long long R = 0; R < Repeat; ++R)
    for (const LabeledProblem &LP : Instances)
      for (const std::string &Spec : Specs)
        writeFrame(std::cout, FrameType::Request,
                   buildRequestPayload(LP.Problem, Spec, DeadlineMillis));
  if (Shutdown)
    writeFrame(std::cout, FrameType::Shutdown, ShutdownMode);
  std::cout.flush();
  return 0;
}
