//===- tools/rc_sweep.cpp - Manifest-driven batch sweeps ---------------------===//
//
// Replays a manifest of instances (generator seeds and/or dumped files,
// see runner/SweepManifest.h) against a set of strategy specs through the
// parallel batch runner, and emits the deterministic JSONL report or an
// aligned summary table.
//
// Examples:
//   rc_sweep --manifest tests/manifests/golden24.manifest --jobs 8
//   rc_sweep --manifest sweep.manifest --strategies briggs,irc --summary
//   rc_sweep --manifest sweep.manifest --timeout-ms 50 --no-timing
//
//===----------------------------------------------------------------------===//

#include "runner/BatchRunner.h"
#include "runner/SweepManifest.h"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_sweep --manifest FILE [flags]\n"
        "  --manifest FILE    instance manifest (subtree/program/file"
        " lines)\n"
        "  --jobs N           worker threads (default 1)\n"
        "  --timeout-ms T     per-job deadline; timed-out jobs report"
        " partial outcomes\n"
        "  --strategies a[,b] strategy specs (default: every registered"
        " strategy)\n"
        "  --summary          print the aligned table instead of JSONL\n"
        "  --no-timing        zero wall-clock fields for byte-stable"
        " output\n";
}

int main(int Argc, char **Argv) {
  std::string ManifestPath;
  std::vector<std::string> Specs;
  BatchOptions Options;
  bool Summary = false;
  bool Timing = true;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: " << Flag << " requires an argument\n";
        return nullptr;
      }
      return &Args[++I];
    };
    if (Args[I] == "--manifest") {
      const std::string *V = value("--manifest");
      if (!V)
        return 2;
      ManifestPath = *V;
    } else if (Args[I] == "--jobs") {
      const std::string *V = value("--jobs");
      if (!V)
        return 2;
      int N = std::atoi(V->c_str());
      if (N < 1) {
        std::cerr << "error: --jobs expects a positive integer\n";
        return 2;
      }
      Options.Workers = static_cast<unsigned>(N);
    } else if (Args[I] == "--timeout-ms") {
      const std::string *V = value("--timeout-ms");
      if (!V)
        return 2;
      Options.TimeoutMillis = std::atoll(V->c_str());
      if (Options.TimeoutMillis <= 0) {
        std::cerr << "error: --timeout-ms expects a positive integer\n";
        return 2;
      }
    } else if (Args[I] == "--strategies") {
      const std::string *V = value("--strategies");
      if (!V)
        return 2;
      Specs = splitStrategySpecs(*V);
    } else if (Args[I] == "--summary") {
      Summary = true;
    } else if (Args[I] == "--no-timing") {
      Timing = false;
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag " << Args[I] << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (ManifestPath.empty()) {
    std::cerr << "error: --manifest is required\n";
    usage(std::cerr);
    return 2;
  }

  if (Specs.empty())
    Specs = StrategyRegistry::instance().names();
  for (const std::string &Spec : Specs) {
    std::string Message;
    if (checkStrategySpec(Spec, &Message) != RunStatus::Ok) {
      std::cerr << "error: " << Message << "\n";
      return 2;
    }
  }

  SweepManifest Manifest;
  std::string Error;
  if (!loadSweepManifest(ManifestPath, Manifest, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  if (Manifest.Entries.empty()) {
    std::cerr << "error: manifest " << ManifestPath << " has no entries\n";
    return 1;
  }

  std::vector<LabeledProblem> Problems;
  if (!materializeSweep(Manifest, Problems, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }

  BatchReport Report = runBatch(crossJobs(Problems, Specs), Options);
  if (Summary)
    printBatchSummary(std::cout, Report);
  else
    writeBatchJsonl(std::cout, Report, Timing);
  return Report.failedJobs() ? 1 : 0;
}
