//===- tools/rc_sweep.cpp - Manifest-driven batch sweeps ---------------------===//
//
// Replays a manifest of instances (generator seeds and/or dumped files,
// see runner/SweepManifest.h) against a set of strategy specs through the
// parallel batch runner, and emits the deterministic JSONL report or an
// aligned summary table.
//
// Examples:
//   rc_sweep --manifest tests/manifests/golden24.manifest --jobs 8
//   rc_sweep --manifest sweep.manifest --strategies briggs,irc --summary
//   rc_sweep --manifest sweep.manifest --timeout-ms 50 --no-timing
//   rc_sweep --manifest huge.manifest --stream --no-timing
//
// --stream materializes one manifest entry at a time (generate/load, run
// every strategy on it, emit its job lines, drop it) so memory stays
// bounded by the largest single instance instead of the whole sweep; with
// --no-timing its JSONL is byte-identical to the batch mode's.
//
//===----------------------------------------------------------------------===//

#include "runner/BatchRunner.h"
#include "runner/SweepManifest.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

using namespace rc;

int main(int Argc, char **Argv) {
  std::string ManifestPath;
  std::vector<std::string> Specs;
  BatchOptions Options;
  long long Jobs = 1;
  long long TimeoutMillis = 0;
  bool Summary = false;
  bool NoTiming = false;
  bool Stream = false;

  ArgParser Parser("rc_sweep", "--manifest FILE [flags]");
  Parser.value("--manifest", "FILE",
               "instance manifest (subtree/program/file lines)",
               &ManifestPath);
  Parser.intValue("--jobs", "N", "worker threads (default 1)", &Jobs, 1,
                  "a positive integer");
  Parser.intValue("--timeout-ms", "T",
                  "per-job deadline; timed-out jobs report partial"
                  " outcomes",
                  &TimeoutMillis, 1, "a positive integer");
  Parser.each("--strategies", "a[,b]",
              "strategy specs (default: every registered strategy)",
              [&](const std::string &V, std::string &) {
                Specs = splitStrategySpecs(V);
                return true;
              });
  Parser.flag("--summary", "print the aligned table instead of JSONL",
              &Summary);
  Parser.flag("--no-timing",
              "zero wall-clock fields for byte-stable output", &NoTiming);
  Parser.flag("--stream",
              "materialize one instance at a time (bounded memory, JSONL"
              " only; byte-identical with --no-timing)",
              &Stream);
  switch (Parser.parse(Argc, Argv, std::cout, std::cerr)) {
  case ArgParser::Result::Ok:
    break;
  case ArgParser::Result::Help:
    return 0;
  case ArgParser::Result::Error:
    return 2;
  }
  Options.Workers = static_cast<unsigned>(Jobs);
  Options.TimeoutMillis = TimeoutMillis;
  bool Timing = !NoTiming;

  if (ManifestPath.empty()) {
    std::cerr << "error: --manifest is required\n";
    Parser.usage(std::cerr);
    return 2;
  }

  if (Specs.empty())
    Specs = StrategyRegistry::instance().names();
  for (const std::string &Spec : Specs) {
    std::string Message;
    if (checkStrategySpec(Spec, &Message) != RunStatus::Ok) {
      std::cerr << "error: " << Message << "\n";
      return 2;
    }
  }

  SweepManifest Manifest;
  std::string Error;
  if (!loadSweepManifest(ManifestPath, Manifest, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  if (Manifest.Entries.empty()) {
    std::cerr << "error: manifest " << ManifestPath << " has no entries\n";
    return 1;
  }

  if (Stream) {
    if (Summary) {
      std::cerr << "error: --summary needs the whole report; drop --stream\n";
      return 2;
    }
    // One entry at a time: the live set is a single instance plus its job
    // results, whatever the manifest size. Jobs keep the global (entry
    // outermost, spec innermost) numbering of the batch path, and rollups
    // are folded in entry order, so the emitted JSONL matches batch mode
    // byte for byte under --no-timing.
    auto Start = std::chrono::steady_clock::now();
    std::vector<StrategyRollup> Rollups;
    BatchTotals Totals;
    for (const SweepEntry &Entry : Manifest.Entries) {
      std::vector<LabeledProblem> One(1);
      if (!materializeSweepEntry(Entry, One[0], &Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      BatchReport Report = runBatch(crossJobs(One, Specs), Options);
      writeBatchJobsJsonl(std::cout, Report, Timing, Totals.Jobs);
      mergeRollups(Rollups, Report.Rollups);
      Totals.Jobs += Report.Jobs.size();
      Totals.Failed += Report.failedJobs();
      Totals.TimedOut += Report.timedOutJobs();
      Totals.Workers = std::max(Totals.Workers, Report.WorkersUsed);
    }
    Totals.WallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - Start)
                            .count();
    writeBatchRollupsJsonl(std::cout, Rollups, Timing);
    writeBatchTrailerJsonl(std::cout, Totals, Timing);
    return Totals.Failed ? 1 : 0;
  }

  std::vector<LabeledProblem> Problems;
  if (!materializeSweep(Manifest, Problems, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }

  BatchReport Report = runBatch(crossJobs(Problems, Specs), Options);
  if (Summary)
    printBatchSummary(std::cout, Report);
  else
    writeBatchJsonl(std::cout, Report, Timing);
  return Report.failedJobs() ? 1 : 0;
}
