//===- tools/rc_sweep.cpp - Manifest-driven batch sweeps ---------------------===//
//
// Replays a manifest of instances (generator seeds and/or dumped files,
// see runner/SweepManifest.h) against a set of strategy specs through the
// parallel batch runner, and emits the deterministic JSONL report or an
// aligned summary table.
//
// Examples:
//   rc_sweep --manifest tests/manifests/golden24.manifest --jobs 8
//   rc_sweep --manifest sweep.manifest --strategies briggs,irc --summary
//   rc_sweep --manifest sweep.manifest --timeout-ms 50 --no-timing
//   rc_sweep --manifest huge.manifest --stream --no-timing
//
// --stream materializes one manifest entry at a time (generate/load, run
// every strategy on it, emit its job lines, drop it) so memory stays
// bounded by the largest single instance instead of the whole sweep; with
// --no-timing its JSONL is byte-identical to the batch mode's.
//
//===----------------------------------------------------------------------===//

#include "runner/BatchRunner.h"
#include "runner/SweepManifest.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace rc;

static void usage(std::ostream &OS) {
  OS << "usage: rc_sweep --manifest FILE [flags]\n"
        "  --manifest FILE    instance manifest (subtree/program/file"
        " lines)\n"
        "  --jobs N           worker threads (default 1)\n"
        "  --timeout-ms T     per-job deadline; timed-out jobs report"
        " partial outcomes\n"
        "  --strategies a[,b] strategy specs (default: every registered"
        " strategy)\n"
        "  --summary          print the aligned table instead of JSONL\n"
        "  --no-timing        zero wall-clock fields for byte-stable"
        " output\n"
        "  --stream           materialize one instance at a time (bounded"
        " memory,\n"
        "                     JSONL only; byte-identical with --no-timing)\n";
}

int main(int Argc, char **Argv) {
  std::string ManifestPath;
  std::vector<std::string> Specs;
  BatchOptions Options;
  bool Summary = false;
  bool Timing = true;
  bool Stream = false;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "error: " << Flag << " requires an argument\n";
        return nullptr;
      }
      return &Args[++I];
    };
    if (Args[I] == "--manifest") {
      const std::string *V = value("--manifest");
      if (!V)
        return 2;
      ManifestPath = *V;
    } else if (Args[I] == "--jobs") {
      const std::string *V = value("--jobs");
      if (!V)
        return 2;
      int N = std::atoi(V->c_str());
      if (N < 1) {
        std::cerr << "error: --jobs expects a positive integer\n";
        return 2;
      }
      Options.Workers = static_cast<unsigned>(N);
    } else if (Args[I] == "--timeout-ms") {
      const std::string *V = value("--timeout-ms");
      if (!V)
        return 2;
      Options.TimeoutMillis = std::atoll(V->c_str());
      if (Options.TimeoutMillis <= 0) {
        std::cerr << "error: --timeout-ms expects a positive integer\n";
        return 2;
      }
    } else if (Args[I] == "--strategies") {
      const std::string *V = value("--strategies");
      if (!V)
        return 2;
      Specs = splitStrategySpecs(*V);
    } else if (Args[I] == "--summary") {
      Summary = true;
    } else if (Args[I] == "--no-timing") {
      Timing = false;
    } else if (Args[I] == "--stream") {
      Stream = true;
    } else if (Args[I] == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown flag " << Args[I] << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (ManifestPath.empty()) {
    std::cerr << "error: --manifest is required\n";
    usage(std::cerr);
    return 2;
  }

  if (Specs.empty())
    Specs = StrategyRegistry::instance().names();
  for (const std::string &Spec : Specs) {
    std::string Message;
    if (checkStrategySpec(Spec, &Message) != RunStatus::Ok) {
      std::cerr << "error: " << Message << "\n";
      return 2;
    }
  }

  SweepManifest Manifest;
  std::string Error;
  if (!loadSweepManifest(ManifestPath, Manifest, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  if (Manifest.Entries.empty()) {
    std::cerr << "error: manifest " << ManifestPath << " has no entries\n";
    return 1;
  }

  if (Stream) {
    if (Summary) {
      std::cerr << "error: --summary needs the whole report; drop --stream\n";
      return 2;
    }
    // One entry at a time: the live set is a single instance plus its job
    // results, whatever the manifest size. Jobs keep the global (entry
    // outermost, spec innermost) numbering of the batch path, and rollups
    // are folded in entry order, so the emitted JSONL matches batch mode
    // byte for byte under --no-timing.
    auto Start = std::chrono::steady_clock::now();
    std::vector<StrategyRollup> Rollups;
    BatchTotals Totals;
    for (const SweepEntry &Entry : Manifest.Entries) {
      std::vector<LabeledProblem> One(1);
      if (!materializeSweepEntry(Entry, One[0], &Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
      BatchReport Report = runBatch(crossJobs(One, Specs), Options);
      writeBatchJobsJsonl(std::cout, Report, Timing, Totals.Jobs);
      mergeRollups(Rollups, Report.Rollups);
      Totals.Jobs += Report.Jobs.size();
      Totals.Failed += Report.failedJobs();
      Totals.TimedOut += Report.timedOutJobs();
      Totals.Workers = std::max(Totals.Workers, Report.WorkersUsed);
    }
    Totals.WallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - Start)
                            .count();
    writeBatchRollupsJsonl(std::cout, Rollups, Timing);
    writeBatchTrailerJsonl(std::cout, Totals, Timing);
    return Totals.Failed ? 1 : 0;
  }

  std::vector<LabeledProblem> Problems;
  if (!materializeSweep(Manifest, Problems, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }

  BatchReport Report = runBatch(crossJobs(Problems, Specs), Options);
  if (Summary)
    printBatchSummary(std::cout, Report);
  else
    writeBatchJsonl(std::cout, Report, Timing);
  return Report.failedJobs() ? 1 : 0;
}
