#!/usr/bin/env sh
# Smoke-tests the rc_serve daemon end to end through rc_request, so
# `ctest -L tools` (and -L service) locks the transport contract:
#
#  1. happy path     -> requests round-trip, ok responses, shutdown ack,
#                       clean exit
#  2. cache warm-up  -> repeated identical request answered from the cache
#                       (byte-identical response payloads, hits in stats)
#  3. EOF ending     -> daemon drains and exits 0 without an ack
#  4. garbage input  -> daemon refuses the stream and exits non-zero
#  5. unix socket    -> rc_serve --listen + rc_request --connect round-trip
#                       is byte-identical to the stdio pipe path, and a
#                       client Shutdown frame retires the daemon cleanly
#
# Usage: tools/rc_serve_smoke.sh <rc_serve> <rc_request>

set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 <rc_serve> <rc_request>" >&2
  exit 2
fi
SERVE="$1"
REQUEST="$2"
SANDBOX=$(mktemp -d)
trap 'rm -rf "$SANDBOX"' EXIT

FAILURES=0
note_failure() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# 1. Two strategies on one generated instance, then a drain shutdown:
#    3 frames back (2 results + ack), all with healthy statuses.
"$REQUEST" --gen "subtree seed=3 n=32 slack=0" \
  --strategies briggs+george,optimistic --shutdown drain \
  > "$SANDBOX/requests.bin" || note_failure "rc_request emit failed"
if ! "$SERVE" --jobs 2 --no-timing --stats \
    < "$SANDBOX/requests.bin" > "$SANDBOX/responses.bin" \
    2> "$SANDBOX/serve.log"; then
  note_failure "rc_serve exited non-zero on a clean stream: $(cat "$SANDBOX/serve.log")"
fi
if ! "$REQUEST" --decode --expect 3 \
    < "$SANDBOX/responses.bin" > "$SANDBOX/decoded.jsonl" 2> "$SANDBOX/decode.log"; then
  note_failure "decode failed: $(cat "$SANDBOX/decode.log")"
fi
grep -q '"status":"ok"' "$SANDBOX/decoded.jsonl" \
  || note_failure "no ok response in $(cat "$SANDBOX/decoded.jsonl")"
grep -q '"status":"shutting-down"' "$SANDBOX/decoded.jsonl" \
  || note_failure "no shutdown ack in $(cat "$SANDBOX/decoded.jsonl")"
grep -q '"stats":{' "$SANDBOX/decoded.jsonl" \
  || note_failure "shutdown ack carries no stats"

# 2. The same request three times in a --no-timing daemon: the response
#    payload lines must be byte-identical and the stats must show hits.
"$REQUEST" --gen "subtree seed=5 n=32 slack=0" --spec briggs \
  --repeat 3 --shutdown drain > "$SANDBOX/warm.bin" \
  || note_failure "rc_request warm emit failed"
"$SERVE" --no-timing --stats < "$SANDBOX/warm.bin" \
  > "$SANDBOX/warm-responses.bin" 2> "$SANDBOX/warm.log" \
  || note_failure "rc_serve failed on the warm stream"
"$REQUEST" --decode --expect 4 < "$SANDBOX/warm-responses.bin" \
  > "$SANDBOX/warm.jsonl" || note_failure "warm decode failed"
RESULTS=$(grep -c '"result":' "$SANDBOX/warm.jsonl")
[ "$RESULTS" = "3" ] || note_failure "expected 3 results, got $RESULTS"
UNIQUE=$(grep '"result":' "$SANDBOX/warm.jsonl" | sort -u | wc -l)
[ "$UNIQUE" = "1" ] || note_failure "cached responses not byte-identical"
grep -q "cache_hits=2" "$SANDBOX/warm.log" \
  || note_failure "expected 2 cache hits in: $(cat "$SANDBOX/warm.log")"

# 3. EOF without a Shutdown frame: clean exit, one response, no ack.
"$REQUEST" --gen "subtree seed=7 n=32 slack=0" --spec briggs \
  > "$SANDBOX/eof.bin" || note_failure "rc_request eof emit failed"
"$SERVE" < "$SANDBOX/eof.bin" > "$SANDBOX/eof-responses.bin" \
  || note_failure "rc_serve exited non-zero on EOF ending"
"$REQUEST" --decode --expect 1 < "$SANDBOX/eof-responses.bin" > /dev/null \
  || note_failure "EOF stream should yield exactly one response"

# 4. Garbage input poisons the stream: non-zero exit, diagnostic.
if printf 'this is not a frame' | "$SERVE" > /dev/null 2> "$SANDBOX/bad.log"; then
  note_failure "rc_serve accepted garbage input"
fi
grep -q "protocol error" "$SANDBOX/bad.log" \
  || note_failure "garbage input not diagnosed: $(cat "$SANDBOX/bad.log")"

# 5. Socket round-trip: the same workload over a Unix socket must decode
#    to exactly the bytes the stdio pipe path produced, and the client's
#    drain shutdown must retire the daemon (exit 0, stats on stderr).
SOCK="$SANDBOX/rc.sock"
"$SERVE" --listen "unix:$SOCK" --jobs 2 --no-timing --stats \
  2> "$SANDBOX/socket-serve.log" &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || note_failure "daemon never bound $SOCK"

"$REQUEST" --connect "unix:$SOCK" \
  --gen "subtree seed=3 n=32 slack=0" \
  --strategies briggs+george,optimistic > "$SANDBOX/socket.jsonl" \
  || note_failure "socket round-trip failed"
# The pipe path on the identical workload (reusing check 1's responses,
# minus the shutdown ack line).
grep -v '"status":"shutting-down"' "$SANDBOX/decoded.jsonl" \
  > "$SANDBOX/pipe.jsonl"
cmp -s "$SANDBOX/socket.jsonl" "$SANDBOX/pipe.jsonl" \
  || note_failure "socket payloads differ from the pipe path"

"$REQUEST" --connect "unix:$SOCK" --shutdown drain \
  > "$SANDBOX/socket-ack.jsonl" || note_failure "socket shutdown failed"
grep -q '"status":"shutting-down"' "$SANDBOX/socket-ack.jsonl" \
  || note_failure "no shutdown ack over the socket"
if wait "$SERVE_PID"; then :; else
  note_failure "socket daemon exited non-zero: $(cat "$SANDBOX/socket-serve.log")"
fi
grep -q "connections=2" "$SANDBOX/socket-serve.log" \
  || note_failure "expected 2 connections in: $(cat "$SANDBOX/socket-serve.log")"
[ -S "$SOCK" ] && note_failure "daemon left its socket file behind"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke check(s) failed" >&2
  exit 1
fi
echo "rc_serve smoke checks passed"
