file(REMOVE_RECURSE
  "CMakeFiles/bench_chordal.dir/bench_chordal.cpp.o"
  "CMakeFiles/bench_chordal.dir/bench_chordal.cpp.o.d"
  "bench_chordal"
  "bench_chordal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chordal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
