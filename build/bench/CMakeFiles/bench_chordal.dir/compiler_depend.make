# Empty compiler generated dependencies file for bench_chordal.
# This may be replaced when dependencies are built.
