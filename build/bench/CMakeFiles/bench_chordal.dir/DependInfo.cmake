
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_chordal.cpp" "bench/CMakeFiles/bench_chordal.dir/bench_chordal.cpp.o" "gcc" "bench/CMakeFiles/bench_chordal.dir/bench_chordal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/challenge/CMakeFiles/rc_challenge.dir/DependInfo.cmake"
  "/root/repo/build/src/npc/CMakeFiles/rc_npc.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/rc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/coalescing/CMakeFiles/rc_coalescing.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
