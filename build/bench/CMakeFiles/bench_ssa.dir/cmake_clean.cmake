file(REMOVE_RECURSE
  "CMakeFiles/bench_ssa.dir/bench_ssa.cpp.o"
  "CMakeFiles/bench_ssa.dir/bench_ssa.cpp.o.d"
  "bench_ssa"
  "bench_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
