# Empty dependencies file for bench_aggressive.
# This may be replaced when dependencies are built.
