file(REMOVE_RECURSE
  "CMakeFiles/bench_aggressive.dir/bench_aggressive.cpp.o"
  "CMakeFiles/bench_aggressive.dir/bench_aggressive.cpp.o.d"
  "bench_aggressive"
  "bench_aggressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
