# Empty compiler generated dependencies file for bench_splitting.
# This may be replaced when dependencies are built.
