# Empty compiler generated dependencies file for bench_irc.
# This may be replaced when dependencies are built.
