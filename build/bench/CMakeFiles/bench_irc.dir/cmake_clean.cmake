file(REMOVE_RECURSE
  "CMakeFiles/bench_irc.dir/bench_irc.cpp.o"
  "CMakeFiles/bench_irc.dir/bench_irc.cpp.o.d"
  "bench_irc"
  "bench_irc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_irc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
