file(REMOVE_RECURSE
  "CMakeFiles/bench_challenge.dir/bench_challenge.cpp.o"
  "CMakeFiles/bench_challenge.dir/bench_challenge.cpp.o.d"
  "bench_challenge"
  "bench_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
