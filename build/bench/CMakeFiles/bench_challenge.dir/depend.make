# Empty dependencies file for bench_challenge.
# This may be replaced when dependencies are built.
