file(REMOVE_RECURSE
  "CMakeFiles/bench_outofssa.dir/bench_outofssa.cpp.o"
  "CMakeFiles/bench_outofssa.dir/bench_outofssa.cpp.o.d"
  "bench_outofssa"
  "bench_outofssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outofssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
