# Empty dependencies file for bench_outofssa.
# This may be replaced when dependencies are built.
