# Empty compiler generated dependencies file for bench_optimistic.
# This may be replaced when dependencies are built.
