file(REMOVE_RECURSE
  "CMakeFiles/bench_colorability.dir/bench_colorability.cpp.o"
  "CMakeFiles/bench_colorability.dir/bench_colorability.cpp.o.d"
  "bench_colorability"
  "bench_colorability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_colorability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
