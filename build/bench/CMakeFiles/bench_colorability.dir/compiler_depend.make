# Empty compiler generated dependencies file for bench_colorability.
# This may be replaced when dependencies are built.
