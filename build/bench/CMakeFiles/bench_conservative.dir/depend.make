# Empty dependencies file for bench_conservative.
# This may be replaced when dependencies are built.
