file(REMOVE_RECURSE
  "CMakeFiles/bench_conservative.dir/bench_conservative.cpp.o"
  "CMakeFiles/bench_conservative.dir/bench_conservative.cpp.o.d"
  "bench_conservative"
  "bench_conservative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conservative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
