# Empty compiler generated dependencies file for bench_localrules.
# This may be replaced when dependencies are built.
