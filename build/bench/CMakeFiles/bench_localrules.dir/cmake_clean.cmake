file(REMOVE_RECURSE
  "CMakeFiles/bench_localrules.dir/bench_localrules.cpp.o"
  "CMakeFiles/bench_localrules.dir/bench_localrules.cpp.o.d"
  "bench_localrules"
  "bench_localrules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_localrules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
