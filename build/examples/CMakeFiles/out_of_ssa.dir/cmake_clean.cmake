file(REMOVE_RECURSE
  "CMakeFiles/out_of_ssa.dir/out_of_ssa.cpp.o"
  "CMakeFiles/out_of_ssa.dir/out_of_ssa.cpp.o.d"
  "out_of_ssa"
  "out_of_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
