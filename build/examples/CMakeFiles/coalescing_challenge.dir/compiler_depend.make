# Empty compiler generated dependencies file for coalescing_challenge.
# This may be replaced when dependencies are built.
