file(REMOVE_RECURSE
  "CMakeFiles/coalescing_challenge.dir/coalescing_challenge.cpp.o"
  "CMakeFiles/coalescing_challenge.dir/coalescing_challenge.cpp.o.d"
  "coalescing_challenge"
  "coalescing_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
