# Empty dependencies file for shuffle_code.
# This may be replaced when dependencies are built.
