file(REMOVE_RECURSE
  "CMakeFiles/shuffle_code.dir/shuffle_code.cpp.o"
  "CMakeFiles/shuffle_code.dir/shuffle_code.cpp.o.d"
  "shuffle_code"
  "shuffle_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
