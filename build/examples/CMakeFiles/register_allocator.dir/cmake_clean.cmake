file(REMOVE_RECURSE
  "CMakeFiles/register_allocator.dir/register_allocator.cpp.o"
  "CMakeFiles/register_allocator.dir/register_allocator.cpp.o.d"
  "register_allocator"
  "register_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
