# Empty dependencies file for register_allocator.
# This may be replaced when dependencies are built.
