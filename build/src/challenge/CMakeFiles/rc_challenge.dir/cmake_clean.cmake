file(REMOVE_RECURSE
  "CMakeFiles/rc_challenge.dir/ChallengeFormat.cpp.o"
  "CMakeFiles/rc_challenge.dir/ChallengeFormat.cpp.o.d"
  "CMakeFiles/rc_challenge.dir/ChallengeInstance.cpp.o"
  "CMakeFiles/rc_challenge.dir/ChallengeInstance.cpp.o.d"
  "CMakeFiles/rc_challenge.dir/StrategyRunner.cpp.o"
  "CMakeFiles/rc_challenge.dir/StrategyRunner.cpp.o.d"
  "librc_challenge.a"
  "librc_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
