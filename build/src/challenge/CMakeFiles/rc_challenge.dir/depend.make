# Empty dependencies file for rc_challenge.
# This may be replaced when dependencies are built.
