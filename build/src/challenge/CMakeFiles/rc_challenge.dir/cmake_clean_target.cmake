file(REMOVE_RECURSE
  "librc_challenge.a"
)
