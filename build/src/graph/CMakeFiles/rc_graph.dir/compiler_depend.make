# Empty compiler generated dependencies file for rc_graph.
# This may be replaced when dependencies are built.
