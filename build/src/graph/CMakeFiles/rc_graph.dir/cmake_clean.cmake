file(REMOVE_RECURSE
  "CMakeFiles/rc_graph.dir/Chordal.cpp.o"
  "CMakeFiles/rc_graph.dir/Chordal.cpp.o.d"
  "CMakeFiles/rc_graph.dir/CliqueTree.cpp.o"
  "CMakeFiles/rc_graph.dir/CliqueTree.cpp.o.d"
  "CMakeFiles/rc_graph.dir/Coloring.cpp.o"
  "CMakeFiles/rc_graph.dir/Coloring.cpp.o.d"
  "CMakeFiles/rc_graph.dir/DimacsIO.cpp.o"
  "CMakeFiles/rc_graph.dir/DimacsIO.cpp.o.d"
  "CMakeFiles/rc_graph.dir/ExactColoring.cpp.o"
  "CMakeFiles/rc_graph.dir/ExactColoring.cpp.o.d"
  "CMakeFiles/rc_graph.dir/Generators.cpp.o"
  "CMakeFiles/rc_graph.dir/Generators.cpp.o.d"
  "CMakeFiles/rc_graph.dir/Graph.cpp.o"
  "CMakeFiles/rc_graph.dir/Graph.cpp.o.d"
  "CMakeFiles/rc_graph.dir/GraphWriter.cpp.o"
  "CMakeFiles/rc_graph.dir/GraphWriter.cpp.o.d"
  "CMakeFiles/rc_graph.dir/GreedyColorability.cpp.o"
  "CMakeFiles/rc_graph.dir/GreedyColorability.cpp.o.d"
  "librc_graph.a"
  "librc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
