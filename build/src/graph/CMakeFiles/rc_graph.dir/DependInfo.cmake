
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Chordal.cpp" "src/graph/CMakeFiles/rc_graph.dir/Chordal.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/Chordal.cpp.o.d"
  "/root/repo/src/graph/CliqueTree.cpp" "src/graph/CMakeFiles/rc_graph.dir/CliqueTree.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/CliqueTree.cpp.o.d"
  "/root/repo/src/graph/Coloring.cpp" "src/graph/CMakeFiles/rc_graph.dir/Coloring.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/Coloring.cpp.o.d"
  "/root/repo/src/graph/DimacsIO.cpp" "src/graph/CMakeFiles/rc_graph.dir/DimacsIO.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/DimacsIO.cpp.o.d"
  "/root/repo/src/graph/ExactColoring.cpp" "src/graph/CMakeFiles/rc_graph.dir/ExactColoring.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/ExactColoring.cpp.o.d"
  "/root/repo/src/graph/Generators.cpp" "src/graph/CMakeFiles/rc_graph.dir/Generators.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/Generators.cpp.o.d"
  "/root/repo/src/graph/Graph.cpp" "src/graph/CMakeFiles/rc_graph.dir/Graph.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/Graph.cpp.o.d"
  "/root/repo/src/graph/GraphWriter.cpp" "src/graph/CMakeFiles/rc_graph.dir/GraphWriter.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/GraphWriter.cpp.o.d"
  "/root/repo/src/graph/GreedyColorability.cpp" "src/graph/CMakeFiles/rc_graph.dir/GreedyColorability.cpp.o" "gcc" "src/graph/CMakeFiles/rc_graph.dir/GreedyColorability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
