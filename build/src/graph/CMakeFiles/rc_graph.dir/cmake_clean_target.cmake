file(REMOVE_RECURSE
  "librc_graph.a"
)
