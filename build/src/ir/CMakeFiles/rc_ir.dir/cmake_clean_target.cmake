file(REMOVE_RECURSE
  "librc_ir.a"
)
