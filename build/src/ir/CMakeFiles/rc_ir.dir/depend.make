# Empty dependencies file for rc_ir.
# This may be replaced when dependencies are built.
