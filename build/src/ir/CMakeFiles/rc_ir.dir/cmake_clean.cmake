file(REMOVE_RECURSE
  "CMakeFiles/rc_ir.dir/CoalescingAwareOutOfSsa.cpp.o"
  "CMakeFiles/rc_ir.dir/CoalescingAwareOutOfSsa.cpp.o.d"
  "CMakeFiles/rc_ir.dir/Dominance.cpp.o"
  "CMakeFiles/rc_ir.dir/Dominance.cpp.o.d"
  "CMakeFiles/rc_ir.dir/Function.cpp.o"
  "CMakeFiles/rc_ir.dir/Function.cpp.o.d"
  "CMakeFiles/rc_ir.dir/InterferenceBuilder.cpp.o"
  "CMakeFiles/rc_ir.dir/InterferenceBuilder.cpp.o.d"
  "CMakeFiles/rc_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/rc_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/rc_ir.dir/LiveRangeSplitting.cpp.o"
  "CMakeFiles/rc_ir.dir/LiveRangeSplitting.cpp.o.d"
  "CMakeFiles/rc_ir.dir/Liveness.cpp.o"
  "CMakeFiles/rc_ir.dir/Liveness.cpp.o.d"
  "CMakeFiles/rc_ir.dir/OutOfSsa.cpp.o"
  "CMakeFiles/rc_ir.dir/OutOfSsa.cpp.o.d"
  "CMakeFiles/rc_ir.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/rc_ir.dir/ProgramGenerator.cpp.o.d"
  "CMakeFiles/rc_ir.dir/SsaConstruction.cpp.o"
  "CMakeFiles/rc_ir.dir/SsaConstruction.cpp.o.d"
  "CMakeFiles/rc_ir.dir/Verifier.cpp.o"
  "CMakeFiles/rc_ir.dir/Verifier.cpp.o.d"
  "librc_ir.a"
  "librc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
