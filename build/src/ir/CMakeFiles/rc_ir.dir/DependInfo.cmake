
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CoalescingAwareOutOfSsa.cpp" "src/ir/CMakeFiles/rc_ir.dir/CoalescingAwareOutOfSsa.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/CoalescingAwareOutOfSsa.cpp.o.d"
  "/root/repo/src/ir/Dominance.cpp" "src/ir/CMakeFiles/rc_ir.dir/Dominance.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/Dominance.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/rc_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/InterferenceBuilder.cpp" "src/ir/CMakeFiles/rc_ir.dir/InterferenceBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/InterferenceBuilder.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/rc_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/LiveRangeSplitting.cpp" "src/ir/CMakeFiles/rc_ir.dir/LiveRangeSplitting.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/LiveRangeSplitting.cpp.o.d"
  "/root/repo/src/ir/Liveness.cpp" "src/ir/CMakeFiles/rc_ir.dir/Liveness.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/Liveness.cpp.o.d"
  "/root/repo/src/ir/OutOfSsa.cpp" "src/ir/CMakeFiles/rc_ir.dir/OutOfSsa.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/OutOfSsa.cpp.o.d"
  "/root/repo/src/ir/ProgramGenerator.cpp" "src/ir/CMakeFiles/rc_ir.dir/ProgramGenerator.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/ProgramGenerator.cpp.o.d"
  "/root/repo/src/ir/SsaConstruction.cpp" "src/ir/CMakeFiles/rc_ir.dir/SsaConstruction.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/SsaConstruction.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/rc_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/rc_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coalescing/CMakeFiles/rc_coalescing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
