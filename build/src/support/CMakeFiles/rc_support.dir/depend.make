# Empty dependencies file for rc_support.
# This may be replaced when dependencies are built.
