file(REMOVE_RECURSE
  "librc_support.a"
)
