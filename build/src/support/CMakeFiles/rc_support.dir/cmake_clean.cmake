file(REMOVE_RECURSE
  "CMakeFiles/rc_support.dir/BitMatrix.cpp.o"
  "CMakeFiles/rc_support.dir/BitMatrix.cpp.o.d"
  "CMakeFiles/rc_support.dir/Random.cpp.o"
  "CMakeFiles/rc_support.dir/Random.cpp.o.d"
  "CMakeFiles/rc_support.dir/UnionFind.cpp.o"
  "CMakeFiles/rc_support.dir/UnionFind.cpp.o.d"
  "librc_support.a"
  "librc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
