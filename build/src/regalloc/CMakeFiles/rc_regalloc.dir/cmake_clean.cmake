file(REMOVE_RECURSE
  "CMakeFiles/rc_regalloc.dir/Allocators.cpp.o"
  "CMakeFiles/rc_regalloc.dir/Allocators.cpp.o.d"
  "CMakeFiles/rc_regalloc.dir/RegisterRewriter.cpp.o"
  "CMakeFiles/rc_regalloc.dir/RegisterRewriter.cpp.o.d"
  "CMakeFiles/rc_regalloc.dir/SpillRewriter.cpp.o"
  "CMakeFiles/rc_regalloc.dir/SpillRewriter.cpp.o.d"
  "librc_regalloc.a"
  "librc_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
