file(REMOVE_RECURSE
  "librc_regalloc.a"
)
