# Empty dependencies file for rc_regalloc.
# This may be replaced when dependencies are built.
