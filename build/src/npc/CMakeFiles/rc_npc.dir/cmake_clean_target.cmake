file(REMOVE_RECURSE
  "librc_npc.a"
)
