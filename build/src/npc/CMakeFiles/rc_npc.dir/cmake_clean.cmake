file(REMOVE_RECURSE
  "CMakeFiles/rc_npc.dir/MultiwayCut.cpp.o"
  "CMakeFiles/rc_npc.dir/MultiwayCut.cpp.o.d"
  "CMakeFiles/rc_npc.dir/Sat.cpp.o"
  "CMakeFiles/rc_npc.dir/Sat.cpp.o.d"
  "CMakeFiles/rc_npc.dir/Theorem2Reduction.cpp.o"
  "CMakeFiles/rc_npc.dir/Theorem2Reduction.cpp.o.d"
  "CMakeFiles/rc_npc.dir/Theorem3Reduction.cpp.o"
  "CMakeFiles/rc_npc.dir/Theorem3Reduction.cpp.o.d"
  "CMakeFiles/rc_npc.dir/Theorem4Reduction.cpp.o"
  "CMakeFiles/rc_npc.dir/Theorem4Reduction.cpp.o.d"
  "CMakeFiles/rc_npc.dir/Theorem6Reduction.cpp.o"
  "CMakeFiles/rc_npc.dir/Theorem6Reduction.cpp.o.d"
  "CMakeFiles/rc_npc.dir/VertexCover.cpp.o"
  "CMakeFiles/rc_npc.dir/VertexCover.cpp.o.d"
  "librc_npc.a"
  "librc_npc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_npc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
