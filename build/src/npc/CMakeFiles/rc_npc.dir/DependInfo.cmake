
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npc/MultiwayCut.cpp" "src/npc/CMakeFiles/rc_npc.dir/MultiwayCut.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/MultiwayCut.cpp.o.d"
  "/root/repo/src/npc/Sat.cpp" "src/npc/CMakeFiles/rc_npc.dir/Sat.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/Sat.cpp.o.d"
  "/root/repo/src/npc/Theorem2Reduction.cpp" "src/npc/CMakeFiles/rc_npc.dir/Theorem2Reduction.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/Theorem2Reduction.cpp.o.d"
  "/root/repo/src/npc/Theorem3Reduction.cpp" "src/npc/CMakeFiles/rc_npc.dir/Theorem3Reduction.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/Theorem3Reduction.cpp.o.d"
  "/root/repo/src/npc/Theorem4Reduction.cpp" "src/npc/CMakeFiles/rc_npc.dir/Theorem4Reduction.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/Theorem4Reduction.cpp.o.d"
  "/root/repo/src/npc/Theorem6Reduction.cpp" "src/npc/CMakeFiles/rc_npc.dir/Theorem6Reduction.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/Theorem6Reduction.cpp.o.d"
  "/root/repo/src/npc/VertexCover.cpp" "src/npc/CMakeFiles/rc_npc.dir/VertexCover.cpp.o" "gcc" "src/npc/CMakeFiles/rc_npc.dir/VertexCover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coalescing/CMakeFiles/rc_coalescing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
