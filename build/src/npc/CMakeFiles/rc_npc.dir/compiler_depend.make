# Empty compiler generated dependencies file for rc_npc.
# This may be replaced when dependencies are built.
