file(REMOVE_RECURSE
  "librc_coalescing.a"
)
