
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coalescing/Aggressive.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/Aggressive.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/Aggressive.cpp.o.d"
  "/root/repo/src/coalescing/BiasedColoring.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/BiasedColoring.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/BiasedColoring.cpp.o.d"
  "/root/repo/src/coalescing/ChordalIncremental.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/ChordalIncremental.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/ChordalIncremental.cpp.o.d"
  "/root/repo/src/coalescing/ChordalStrategy.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/ChordalStrategy.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/ChordalStrategy.cpp.o.d"
  "/root/repo/src/coalescing/Conservative.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/Conservative.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/Conservative.cpp.o.d"
  "/root/repo/src/coalescing/IteratedRegisterCoalescing.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/IteratedRegisterCoalescing.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/IteratedRegisterCoalescing.cpp.o.d"
  "/root/repo/src/coalescing/NodeMerging.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/NodeMerging.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/NodeMerging.cpp.o.d"
  "/root/repo/src/coalescing/Optimistic.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/Optimistic.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/Optimistic.cpp.o.d"
  "/root/repo/src/coalescing/Problem.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/Problem.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/Problem.cpp.o.d"
  "/root/repo/src/coalescing/Spilling.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/Spilling.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/Spilling.cpp.o.d"
  "/root/repo/src/coalescing/WorkGraph.cpp" "src/coalescing/CMakeFiles/rc_coalescing.dir/WorkGraph.cpp.o" "gcc" "src/coalescing/CMakeFiles/rc_coalescing.dir/WorkGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
