file(REMOVE_RECURSE
  "CMakeFiles/rc_coalescing.dir/Aggressive.cpp.o"
  "CMakeFiles/rc_coalescing.dir/Aggressive.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/BiasedColoring.cpp.o"
  "CMakeFiles/rc_coalescing.dir/BiasedColoring.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/ChordalIncremental.cpp.o"
  "CMakeFiles/rc_coalescing.dir/ChordalIncremental.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/ChordalStrategy.cpp.o"
  "CMakeFiles/rc_coalescing.dir/ChordalStrategy.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/Conservative.cpp.o"
  "CMakeFiles/rc_coalescing.dir/Conservative.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/IteratedRegisterCoalescing.cpp.o"
  "CMakeFiles/rc_coalescing.dir/IteratedRegisterCoalescing.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/NodeMerging.cpp.o"
  "CMakeFiles/rc_coalescing.dir/NodeMerging.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/Optimistic.cpp.o"
  "CMakeFiles/rc_coalescing.dir/Optimistic.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/Problem.cpp.o"
  "CMakeFiles/rc_coalescing.dir/Problem.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/Spilling.cpp.o"
  "CMakeFiles/rc_coalescing.dir/Spilling.cpp.o.d"
  "CMakeFiles/rc_coalescing.dir/WorkGraph.cpp.o"
  "CMakeFiles/rc_coalescing.dir/WorkGraph.cpp.o.d"
  "librc_coalescing.a"
  "librc_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
