# Empty dependencies file for rc_coalescing.
# This may be replaced when dependencies are built.
