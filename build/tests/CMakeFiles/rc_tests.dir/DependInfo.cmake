
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AggressiveTest.cpp" "tests/CMakeFiles/rc_tests.dir/AggressiveTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/AggressiveTest.cpp.o.d"
  "/root/repo/tests/BiasedColoringTest.cpp" "tests/CMakeFiles/rc_tests.dir/BiasedColoringTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/BiasedColoringTest.cpp.o.d"
  "/root/repo/tests/ChallengeTest.cpp" "tests/CMakeFiles/rc_tests.dir/ChallengeTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ChallengeTest.cpp.o.d"
  "/root/repo/tests/ChordalIncrementalTest.cpp" "tests/CMakeFiles/rc_tests.dir/ChordalIncrementalTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ChordalIncrementalTest.cpp.o.d"
  "/root/repo/tests/ChordalStrategyTest.cpp" "tests/CMakeFiles/rc_tests.dir/ChordalStrategyTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ChordalStrategyTest.cpp.o.d"
  "/root/repo/tests/ChordalTest.cpp" "tests/CMakeFiles/rc_tests.dir/ChordalTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ChordalTest.cpp.o.d"
  "/root/repo/tests/ChordalityOracleTest.cpp" "tests/CMakeFiles/rc_tests.dir/ChordalityOracleTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ChordalityOracleTest.cpp.o.d"
  "/root/repo/tests/CoalescingCoreTest.cpp" "tests/CMakeFiles/rc_tests.dir/CoalescingCoreTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/CoalescingCoreTest.cpp.o.d"
  "/root/repo/tests/CoalescingOutOfSsaTest.cpp" "tests/CMakeFiles/rc_tests.dir/CoalescingOutOfSsaTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/CoalescingOutOfSsaTest.cpp.o.d"
  "/root/repo/tests/ColoringTest.cpp" "tests/CMakeFiles/rc_tests.dir/ColoringTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ColoringTest.cpp.o.d"
  "/root/repo/tests/ConservativeTest.cpp" "tests/CMakeFiles/rc_tests.dir/ConservativeTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ConservativeTest.cpp.o.d"
  "/root/repo/tests/DimacsTest.cpp" "tests/CMakeFiles/rc_tests.dir/DimacsTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/DimacsTest.cpp.o.d"
  "/root/repo/tests/EdgeCasesTest.cpp" "tests/CMakeFiles/rc_tests.dir/EdgeCasesTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/EdgeCasesTest.cpp.o.d"
  "/root/repo/tests/ExactColoringTest.cpp" "tests/CMakeFiles/rc_tests.dir/ExactColoringTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/ExactColoringTest.cpp.o.d"
  "/root/repo/tests/GeneratorsTest.cpp" "tests/CMakeFiles/rc_tests.dir/GeneratorsTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/GeneratorsTest.cpp.o.d"
  "/root/repo/tests/GraphTest.cpp" "tests/CMakeFiles/rc_tests.dir/GraphTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/GraphTest.cpp.o.d"
  "/root/repo/tests/InterferenceTest.cpp" "tests/CMakeFiles/rc_tests.dir/InterferenceTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/InterferenceTest.cpp.o.d"
  "/root/repo/tests/IrTest.cpp" "tests/CMakeFiles/rc_tests.dir/IrTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/IrTest.cpp.o.d"
  "/root/repo/tests/IrcTest.cpp" "tests/CMakeFiles/rc_tests.dir/IrcTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/IrcTest.cpp.o.d"
  "/root/repo/tests/NodeMergingTest.cpp" "tests/CMakeFiles/rc_tests.dir/NodeMergingTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/NodeMergingTest.cpp.o.d"
  "/root/repo/tests/NpcSolversTest.cpp" "tests/CMakeFiles/rc_tests.dir/NpcSolversTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/NpcSolversTest.cpp.o.d"
  "/root/repo/tests/OptimisticTest.cpp" "tests/CMakeFiles/rc_tests.dir/OptimisticTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/OptimisticTest.cpp.o.d"
  "/root/repo/tests/OutOfSsaTest.cpp" "tests/CMakeFiles/rc_tests.dir/OutOfSsaTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/OutOfSsaTest.cpp.o.d"
  "/root/repo/tests/PrintingTest.cpp" "tests/CMakeFiles/rc_tests.dir/PrintingTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/PrintingTest.cpp.o.d"
  "/root/repo/tests/RegallocTest.cpp" "tests/CMakeFiles/rc_tests.dir/RegallocTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/RegallocTest.cpp.o.d"
  "/root/repo/tests/SatTest.cpp" "tests/CMakeFiles/rc_tests.dir/SatTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/SatTest.cpp.o.d"
  "/root/repo/tests/SpillingTest.cpp" "tests/CMakeFiles/rc_tests.dir/SpillingTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/SpillingTest.cpp.o.d"
  "/root/repo/tests/SsaConstructionTest.cpp" "tests/CMakeFiles/rc_tests.dir/SsaConstructionTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/SsaConstructionTest.cpp.o.d"
  "/root/repo/tests/StressTest.cpp" "tests/CMakeFiles/rc_tests.dir/StressTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/StressTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/rc_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/Theorem6Test.cpp" "tests/CMakeFiles/rc_tests.dir/Theorem6Test.cpp.o" "gcc" "tests/CMakeFiles/rc_tests.dir/Theorem6Test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/challenge/CMakeFiles/rc_challenge.dir/DependInfo.cmake"
  "/root/repo/build/src/npc/CMakeFiles/rc_npc.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/rc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/coalescing/CMakeFiles/rc_coalescing.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
