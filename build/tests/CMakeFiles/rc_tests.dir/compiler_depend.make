# Empty compiler generated dependencies file for rc_tests.
# This may be replaced when dependencies are built.
